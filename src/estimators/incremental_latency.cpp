#include "estimators/incremental_latency.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "parallel/parallel_config.h"
#include "sim/stage_costs.h"

namespace pipette::estimators {

IncrementalLatencyEvaluator::IncrementalLatencyEvaluator(const PipetteLatencyModel& model,
                                                         const parallel::Mapping& start,
                                                         int gpus_per_node)
    : model_(&model), cur_(start) {
  const parallel::ParallelConfig& pc = model.pc_;
  pp_ = pc.pp;
  tp_ = pc.tp;
  dp_ = pc.dp;
  move_gpn_ = gpus_per_node;
  const int n = cur_.num_workers();
  const int num_gpus = model.bw_->num_gpus();
  num_nodes_ = std::max(1, (num_gpus + model.links_.gpus_per_node - 1) / model.links_.gpus_per_node);
  pair_stride_ = num_nodes_ * num_nodes_;
  rounds_ = static_cast<double>(model.nmb_) / pc.pp;
  flow_bytes_ = model.pp_msg_bytes_ / pc.tp;
  ppcomm_scale_ = model.ppcomm_scale_;
  fill_scale_ = model.fill_scale_;

  pos_stage_.resize(static_cast<std::size_t>(n));
  pos_tpr_.resize(static_cast<std::size_t>(n));
  pos_dpr_.resize(static_cast<std::size_t>(n));
  for (int x = 0; x < pp_; ++x) {
    for (int y = 0; y < tp_; ++y) {
      for (int z = 0; z < dp_; ++z) {
        const auto w = static_cast<std::size_t>(cur_.worker_index(x, y, z));
        pos_stage_[w] = x;
        pos_tpr_[w] = y;
        pos_dpr_[w] = z;
      }
    }
  }
  node_of_gpu_.resize(static_cast<std::size_t>(num_gpus));
  for (int g = 0; g < num_gpus; ++g) {
    node_of_gpu_[static_cast<std::size_t>(g)] = g / model.links_.gpus_per_node;
  }

  layers_.resize(static_cast<std::size_t>(pp_));
  c_.resize(static_cast<std::size_t>(pp_));
  msg_.resize(static_cast<std::size_t>(pp_));
  for (int x = 0; x < pp_; ++x) {
    layers_[static_cast<std::size_t>(x)] =
        parallel::layers_of_position(model.job_->model.num_layers, model.plan_, x);
    c_[static_cast<std::size_t>(x)] = model.profile_.stage_fwd_s[static_cast<std::size_t>(x)] +
                                      model.profile_.stage_bwd_s[static_cast<std::size_t>(x)];
    msg_[static_cast<std::size_t>(x)] = sim::dp_sync_bytes(model.job_->model, model.plan_, x);
  }
  // The full model builds an inter-node hop's shared byte count by adding
  // flow_bytes once per sharing flow; precomputing the same running sums keeps
  // the incremental result bit-identical without the O(dp·tp) inner loop.
  shared_sum_.resize(static_cast<std::size_t>(dp_ * tp_) + 1);
  shared_sum_[0] = 0.0;
  for (std::size_t k = 1; k < shared_sum_.size(); ++k) {
    shared_sum_[k] = shared_sum_[k - 1] + flow_bytes_;
  }

  const int cells = pp_ * dp_;
  const int hops = std::max(0, pp_ - 1);
  const int groups = pp_ * tp_;
  const int flows = hops * dp_ * tp_;
  tp_term_.assign(static_cast<std::size_t>(cells), 0.0);
  block_.assign(static_cast<std::size_t>(pp_), 0.0);
  hop_.assign(static_cast<std::size_t>(hops * dp_), 0.0);
  flow_pair_.assign(static_cast<std::size_t>(flows), -1);
  pair_count_.assign(static_cast<std::size_t>(hops) * static_cast<std::size_t>(pair_stride_), 0);
  g_min_intra_.assign(static_cast<std::size_t>(groups), 0.0);
  g_min_inter_.assign(static_cast<std::size_t>(groups), 0.0);
  g_max_same_.assign(static_cast<std::size_t>(groups), 1);
  g_num_nodes_.assign(static_cast<std::size_t>(groups), 0);
  g_nodes_.assign(static_cast<std::size_t>(groups * dp_), 0);
  node_flows_.assign(static_cast<std::size_t>(num_nodes_), 0);
  g_flows_key_.assign(static_cast<std::size_t>(groups), -1);
  g_t_memo_.assign(static_cast<std::size_t>(groups), 0.0);

  stamp_cell_.assign(static_cast<std::size_t>(cells), 0);
  stamp_stage_.assign(static_cast<std::size_t>(pp_), 0);
  stamp_group_.assign(static_cast<std::size_t>(groups), 0);
  stamp_flow_.assign(static_cast<std::size_t>(flows), 0);
  stamp_col_.assign(static_cast<std::size_t>(hops * dp_), 0);
  stamp_pair_.assign(pair_count_.size(), 0);
  dirty_cells_.reserve(static_cast<std::size_t>(cells));
  dirty_stages_.reserve(static_cast<std::size_t>(pp_));
  dirty_groups_.reserve(static_cast<std::size_t>(groups));
  dirty_flows_.reserve(static_cast<std::size_t>(flows));
  dirty_cols_.reserve(static_cast<std::size_t>(hops * dp_));
  changed_pairs_.reserve(static_cast<std::size_t>(2 * std::max(1, flows)));
  touched_pos_.reserve(static_cast<std::size_t>(n));
  undo_tp_.resize(static_cast<std::size_t>(cells));
  undo_block_.resize(static_cast<std::size_t>(pp_));
  undo_hop_.resize(static_cast<std::size_t>(hops * dp_));
  pair_deltas_.reserve(static_cast<std::size_t>(2 * std::max(1, flows)));
  undo_g_min_intra_.resize(static_cast<std::size_t>(groups));
  undo_g_min_inter_.resize(static_cast<std::size_t>(groups));
  undo_g_max_same_.resize(static_cast<std::size_t>(groups));
  undo_g_num_nodes_.resize(static_cast<std::size_t>(groups));
  undo_g_nodes_.resize(static_cast<std::size_t>(groups * dp_));
  scratch_gpu_.resize(static_cast<std::size_t>(std::max(tp_, dp_)));
  scratch_node_.resize(static_cast<std::size_t>(std::max(tp_, dp_)));
  scratch_counts_.assign(static_cast<std::size_t>(num_nodes_), 0);

  full_recompute();
}

void IncrementalLatencyEvaluator::recompute_tp_cell(int stage, int dpr) {
  // Mirrors PipetteLatencyModel::tp_time with members hoisted into scratch
  // (same pair order, so the same mins); for tp < 2 the ring term is zero
  // either way.
  const auto* bw = model_->bw_;
  for (int y = 0; y < tp_; ++y) {
    const int g = cur_.gpu_of(stage, y, dpr);
    scratch_gpu_[static_cast<std::size_t>(y)] = g;
    scratch_node_[static_cast<std::size_t>(y)] = node_of_gpu_[static_cast<std::size_t>(g)];
  }
  double min_bw = std::numeric_limits<double>::infinity();
  bool crosses_node = false;
  for (int y1 = 0; y1 < tp_; ++y1) {
    const int g1 = scratch_gpu_[static_cast<std::size_t>(y1)];
    const int n1 = scratch_node_[static_cast<std::size_t>(y1)];
    for (int y2 = 0; y2 < tp_; ++y2) {
      if (y1 == y2) continue;
      min_bw = std::min(min_bw, bw->at(g1, scratch_gpu_[static_cast<std::size_t>(y2)]));
      if (n1 != scratch_node_[static_cast<std::size_t>(y2)]) crosses_node = true;
    }
  }
  const double lat = crosses_node ? model_->links_.inter_latency_s : model_->links_.intra_latency_s;
  tp_term_[static_cast<std::size_t>(stage * dp_ + dpr)] =
      4.0 * layers_[static_cast<std::size_t>(stage)] *
      detail::ring_allreduce(model_->tp_msg_bytes_, tp_, min_bw, lat);
}

void IncrementalLatencyEvaluator::recompute_block(int stage) {
  const double c = c_[static_cast<std::size_t>(stage)];
  double block = c;
  for (int z = 0; z < dp_; ++z) {
    block = std::max(block, c + tp_term_[static_cast<std::size_t>(stage * dp_ + z)]);
  }
  block_[static_cast<std::size_t>(stage)] = block;
}

void IncrementalLatencyEvaluator::reprice_hop_column(int hop, int dpr) {
  // Mirrors the per-replica flow pricing of PipetteLatencyModel::pp_comm_term;
  // the NIC-sharing counts are maintained incrementally in pair_count_, so
  // the full model's O(dp·tp) sharing scan per flow becomes one lookup.
  const auto* bw = model_->bw_;
  const double intra_lat = model_->links_.intra_latency_s;
  const double inter_lat = model_->links_.inter_latency_s;
  const int base = (hop * dp_ + dpr) * tp_;
  double h = 0.0;
  for (int y = 0; y < tp_; ++y) {
    const int g1 = cur_.gpu_of(hop, y, dpr);
    const int g2 = cur_.gpu_of(hop + 1, y, dpr);
    const int pair = flow_pair_[static_cast<std::size_t>(base + y)];
    double fwd, bwd;
    if (pair < 0) {
      fwd = flow_bytes_ / bw->at(g1, g2) + intra_lat;
      bwd = flow_bytes_ / bw->at(g2, g1) + intra_lat;
    } else {
      const double shared_bytes = shared_sum_[static_cast<std::size_t>(
          pair_count_[static_cast<std::size_t>(hop * pair_stride_ + pair)])];
      fwd = shared_bytes / bw->at(g1, g2) + inter_lat;
      bwd = shared_bytes / bw->at(g2, g1) + inter_lat;
    }
    h = std::max(h, fwd + bwd);
  }
  hop_[static_cast<std::size_t>(hop * dp_ + dpr)] = h;
}

void IncrementalLatencyEvaluator::recompute_group(int stage, int tpr) {
  const int gidx = stage * tp_ + tpr;
  for (int z = 0; z < dp_; ++z) {
    const int g = cur_.gpu_of(stage, tpr, z);
    scratch_gpu_[static_cast<std::size_t>(z)] = g;
    scratch_node_[static_cast<std::size_t>(z)] = node_of_gpu_[static_cast<std::size_t>(g)];
  }
  int* nodes = &g_nodes_[static_cast<std::size_t>(gidx * dp_)];
  int num = 0;
  for (int z = 0; z < dp_; ++z) {
    const int n = scratch_node_[static_cast<std::size_t>(z)];
    if (scratch_counts_[static_cast<std::size_t>(n)]++ == 0) nodes[num++] = n;
  }
  int max_same = 1;
  for (int i = 0; i < num; ++i) {
    max_same = std::max(max_same, scratch_counts_[static_cast<std::size_t>(nodes[i])]);
    scratch_counts_[static_cast<std::size_t>(nodes[i])] = 0;
  }
  const auto* bw = model_->bw_;
  double min_intra = std::numeric_limits<double>::infinity();
  double min_inter = std::numeric_limits<double>::infinity();
  for (int z1 = 0; z1 < dp_; ++z1) {
    const int g1 = scratch_gpu_[static_cast<std::size_t>(z1)];
    const int n1 = scratch_node_[static_cast<std::size_t>(z1)];
    for (int z2 = 0; z2 < dp_; ++z2) {
      if (z1 == z2) continue;
      const double b = bw->at(g1, scratch_gpu_[static_cast<std::size_t>(z2)]);
      if (n1 == scratch_node_[static_cast<std::size_t>(z2)]) {
        min_intra = std::min(min_intra, b);
      } else {
        min_inter = std::min(min_inter, b);
      }
    }
  }
  g_min_intra_[static_cast<std::size_t>(gidx)] = min_intra;
  g_min_inter_[static_cast<std::size_t>(gidx)] = min_inter;
  g_max_same_[static_cast<std::size_t>(gidx)] = max_same;
  g_num_nodes_[static_cast<std::size_t>(gidx)] = num;
  g_flows_key_[static_cast<std::size_t>(gidx)] = -1;  // invalidate the memo
}

void IncrementalLatencyEvaluator::add_group_flows(int gidx, int delta) {
  const int num = g_num_nodes_[static_cast<std::size_t>(gidx)];
  if (num < 2) return;  // only node-crossing rings occupy a NIC
  const int* nodes = &g_nodes_[static_cast<std::size_t>(gidx * dp_)];
  for (int i = 0; i < num; ++i) node_flows_[static_cast<std::size_t>(nodes[i])] += delta;
}

double IncrementalLatencyEvaluator::reduce() const {
  // Fold the cached tables in the exact order PipetteLatencyModel::estimate
  // uses: per-stage blocks in stage order, hop sums in hop order, and the
  // same max/add/divide expressions, so the result is bit-identical.
  double sum_blocks = 0.0;
  double max_block = 0.0;
  for (int x = 0; x < pp_; ++x) {
    const double b = block_[static_cast<std::size_t>(x)];
    sum_blocks += b;
    max_block = std::max(max_block, b);
  }
  double pp_comm = 0.0;
  for (int z = 0; z < dp_; ++z) {
    double path = 0.0;
    for (int e = 0; e + 1 < pp_; ++e) path += hop_[static_cast<std::size_t>(e * dp_ + z)];
    pp_comm = std::max(pp_comm, path);
  }
  const double bubble = std::max(sum_blocks + ppcomm_scale_ * pp_comm, pp_ * max_block);
  const double straggler = (pp_ - 1) * max_block * fill_scale_;
  double dp_comm = 0.0;
  if (dp_ >= 2) {
    for (int stage = 0; stage < pp_; ++stage) {
      const double msg = msg_[static_cast<std::size_t>(stage)];
      for (int y = 0; y < tp_; ++y) {
        const auto gidx = static_cast<std::size_t>(stage * tp_ + y);
        const int num = g_num_nodes_[gidx];
        const int* nodes = &g_nodes_[gidx * static_cast<std::size_t>(dp_)];
        int flows = 1;
        for (int i = 0; i < num; ++i) {
          flows = std::max(flows, node_flows_[static_cast<std::size_t>(nodes[i])]);
        }
        // The ring term depends on the (rarely changing) sharing factor and
        // the group stats; memoize on the factor, recompute on stats change.
        double t;
        if (g_flows_key_[gidx] == flows) {
          t = g_t_memo_[gidx];
        } else {
          t = 0.0;
          if (g_max_same_[gidx] > 1) {
            const auto ni = static_cast<double>(g_max_same_[gidx]);
            t += 4.0 * (ni - 1.0) * msg / (ni * g_min_intra_[gidx]);
          }
          if (num > 1) {
            const auto nn = static_cast<double>(num);
            t += 2.0 * (nn - 1.0) * msg / (nn * g_min_inter_[gidx] / flows);
          }
          g_flows_key_[gidx] = flows;
          g_t_memo_[gidx] = t;
        }
        dp_comm = std::max(dp_comm, t);
      }
    }
  }
  return bubble * rounds_ + straggler + dp_comm;
}

void IncrementalLatencyEvaluator::full_recompute() {
  for (int x = 0; x < pp_; ++x) {
    for (int z = 0; z < dp_; ++z) recompute_tp_cell(x, z);
    recompute_block(x);
  }
  std::fill(pair_count_.begin(), pair_count_.end(), 0);
  for (int e = 0; e + 1 < pp_; ++e) {
    for (int z = 0; z < dp_; ++z) {
      for (int y = 0; y < tp_; ++y) {
        const int n1 = node_of_gpu_[static_cast<std::size_t>(cur_.gpu_of(e, y, z))];
        const int n2 = node_of_gpu_[static_cast<std::size_t>(cur_.gpu_of(e + 1, y, z))];
        const int pair = n1 == n2 ? -1 : n1 * num_nodes_ + n2;
        flow_pair_[static_cast<std::size_t>((e * dp_ + z) * tp_ + y)] = pair;
        if (pair >= 0) ++pair_count_[static_cast<std::size_t>(e * pair_stride_ + pair)];
      }
    }
  }
  for (int e = 0; e + 1 < pp_; ++e) {
    for (int z = 0; z < dp_; ++z) reprice_hop_column(e, z);
  }
  std::fill(node_flows_.begin(), node_flows_.end(), 0);
  for (int x = 0; x < pp_; ++x) {
    for (int y = 0; y < tp_; ++y) {
      recompute_group(x, y);
      add_group_flows(x * tp_ + y, +1);
    }
  }
  cost_ = reduce();
  pending_ = false;
}

void IncrementalLatencyEvaluator::apply_and_collect(const parallel::MappingMoveDesc& mv) {
  // Equivalent to parallel::touched_positions + parallel::apply_move but in
  // one pass (node moves pay the per-element node division once, not twice).
  using parallel::MoveKind;
  touched_pos_.clear();
  switch (mv.kind) {
    case MoveKind::kSwap:
      if (mv.a != mv.b) {
        touched_pos_.push_back(mv.a);
        touched_pos_.push_back(mv.b);
      }
      cur_.swap(mv.a, mv.b);
      break;
    case MoveKind::kMigrate:
    case MoveKind::kReverse: {
      const int lo = std::min(mv.a, mv.b), hi = std::max(mv.a, mv.b);
      for (int p = lo; p <= hi && lo != hi; ++p) touched_pos_.push_back(p);
      if (mv.kind == MoveKind::kMigrate) {
        cur_.migrate(mv.a, mv.b);
      } else {
        cur_.reverse(mv.a, mv.b);
      }
      break;
    }
    case MoveKind::kNodeSwap:
      cur_.swap_nodes(mv.a, mv.b, move_gpn_, touched_pos_);
      break;
    case MoveKind::kNodeReverse:
      cur_.reverse_nodes(mv.a, mv.b, move_gpn_, touched_pos_);
      break;
  }
}

double IncrementalLatencyEvaluator::propose(const parallel::MappingMoveDesc& mv) {
  assert(!pending_ && "propose() requires a commit() or rollback() first");
  pending_ = true;
  pending_move_ = mv;
  apply_and_collect(mv);

  if (++epoch_ == 0) {  // stamp wrap-around: invalidate all stamps once
    std::fill(stamp_cell_.begin(), stamp_cell_.end(), 0u);
    std::fill(stamp_stage_.begin(), stamp_stage_.end(), 0u);
    std::fill(stamp_group_.begin(), stamp_group_.end(), 0u);
    std::fill(stamp_flow_.begin(), stamp_flow_.end(), 0u);
    std::fill(stamp_col_.begin(), stamp_col_.end(), 0u);
    std::fill(stamp_pair_.begin(), stamp_pair_.end(), 0u);
    epoch_ = 1;
  }
  dirty_cells_.clear();
  dirty_stages_.clear();
  dirty_groups_.clear();
  dirty_flows_.clear();
  dirty_cols_.clear();
  changed_pairs_.clear();
  pair_deltas_.clear();
  // tp < 2 leaves every TP term at zero and every block at C forever, and
  // dp < 2 zeroes the whole DP term — skip the respective bookkeeping.
  const bool track_cells = tp_ >= 2;
  const bool track_groups = dp_ >= 2;
  for (int p : touched_pos_) {
    const int x = pos_stage_[static_cast<std::size_t>(p)];
    const int y = pos_tpr_[static_cast<std::size_t>(p)];
    const int z = pos_dpr_[static_cast<std::size_t>(p)];
    if (track_cells) {
      const int cell = x * dp_ + z;
      if (stamp_cell_[static_cast<std::size_t>(cell)] != epoch_) {
        stamp_cell_[static_cast<std::size_t>(cell)] = epoch_;
        dirty_cells_.push_back({cell, x, z});
      }
      if (stamp_stage_[static_cast<std::size_t>(x)] != epoch_) {
        stamp_stage_[static_cast<std::size_t>(x)] = epoch_;
        dirty_stages_.push_back(x);
      }
    }
    if (track_groups) {
      const int gidx = x * tp_ + y;
      if (stamp_group_[static_cast<std::size_t>(gidx)] != epoch_) {
        stamp_group_[static_cast<std::size_t>(gidx)] = epoch_;
        dirty_groups_.push_back({gidx, x, y});
      }
    }
    // The flow into this worker's stage and the flow out of it, both for
    // this worker's own (tp, dp) lane.
    if (x > 0) {
      const int fl = ((x - 1) * dp_ + z) * tp_ + y;
      if (stamp_flow_[static_cast<std::size_t>(fl)] != epoch_) {
        stamp_flow_[static_cast<std::size_t>(fl)] = epoch_;
        dirty_flows_.push_back({fl, x - 1, z, y});
      }
    }
    if (x + 1 < pp_) {
      const int fl = (x * dp_ + z) * tp_ + y;
      if (stamp_flow_[static_cast<std::size_t>(fl)] != epoch_) {
        stamp_flow_[static_cast<std::size_t>(fl)] = epoch_;
        dirty_flows_.push_back({fl, x, z, y});
      }
    }
  }

  for (std::size_t i = 0; i < dirty_cells_.size(); ++i) {
    const DirtyCell& dc = dirty_cells_[i];
    undo_tp_[i] = tp_term_[static_cast<std::size_t>(dc.idx)];
    recompute_tp_cell(dc.stage, dc.dpr);
  }
  for (std::size_t i = 0; i < dirty_stages_.size(); ++i) {
    const int x = dirty_stages_[i];
    undo_block_[i] = block_[static_cast<std::size_t>(x)];
    recompute_block(x);
  }

  // Pipeline flows: refresh each touched flow's ordered node pair and the
  // per-(hop, pair) sharing counts, then reprice exactly the columns that
  // hold a touched flow or a flow whose sharing count changed.
  for (const DirtyFlow& df : dirty_flows_) {
    const int n1 = node_of_gpu_[static_cast<std::size_t>(cur_.gpu_of(df.hop, df.tpr, df.dpr))];
    const int n2 = node_of_gpu_[static_cast<std::size_t>(cur_.gpu_of(df.hop + 1, df.tpr, df.dpr))];
    const int new_pair = n1 == n2 ? -1 : n1 * num_nodes_ + n2;
    const int old_pair = flow_pair_[static_cast<std::size_t>(df.idx)];
    const int col = df.hop * dp_ + df.dpr;
    if (stamp_col_[static_cast<std::size_t>(col)] != epoch_) {
      stamp_col_[static_cast<std::size_t>(col)] = epoch_;
      dirty_cols_.push_back({col, df.hop, df.dpr});
    }
    if (new_pair == old_pair) continue;
    flow_pair_[static_cast<std::size_t>(df.idx)] = new_pair;
    if (old_pair >= 0) {
      const int idx = df.hop * pair_stride_ + old_pair;
      --pair_count_[static_cast<std::size_t>(idx)];
      pair_deltas_.push_back({idx, -1});
      if (stamp_pair_[static_cast<std::size_t>(idx)] != epoch_) {
        stamp_pair_[static_cast<std::size_t>(idx)] = epoch_;
        changed_pairs_.push_back({idx, df.hop, old_pair});
      }
    }
    if (new_pair >= 0) {
      const int idx = df.hop * pair_stride_ + new_pair;
      ++pair_count_[static_cast<std::size_t>(idx)];
      pair_deltas_.push_back({idx, +1});
      if (stamp_pair_[static_cast<std::size_t>(idx)] != epoch_) {
        stamp_pair_[static_cast<std::size_t>(idx)] = epoch_;
        changed_pairs_.push_back({idx, df.hop, new_pair});
      }
    }
  }
  for (const ChangedPair& cp : changed_pairs_) {
    const int base = cp.hop * dp_;
    for (int z = 0; z < dp_; ++z) {
      const int col = base + z;
      if (stamp_col_[static_cast<std::size_t>(col)] == epoch_) continue;  // already dirty
      const int fbase = col * tp_;
      for (int y = 0; y < tp_; ++y) {
        if (flow_pair_[static_cast<std::size_t>(fbase + y)] == cp.pair) {
          stamp_col_[static_cast<std::size_t>(col)] = epoch_;
          dirty_cols_.push_back({col, cp.hop, z});
          break;
        }
      }
    }
  }
  for (std::size_t i = 0; i < dirty_cols_.size(); ++i) {
    undo_hop_[i] = hop_[static_cast<std::size_t>(dirty_cols_[i].idx)];
    reprice_hop_column(dirty_cols_[i].hop, dirty_cols_[i].dpr);
  }

  for (std::size_t i = 0; i < dirty_groups_.size(); ++i) {
    const DirtyGroup& dg = dirty_groups_[i];
    const auto gidx = static_cast<std::size_t>(dg.gidx);
    undo_g_min_intra_[i] = g_min_intra_[gidx];
    undo_g_min_inter_[i] = g_min_inter_[gidx];
    undo_g_max_same_[i] = g_max_same_[gidx];
    undo_g_num_nodes_[i] = g_num_nodes_[gidx];
    for (int j = 0; j < g_num_nodes_[gidx]; ++j) {
      undo_g_nodes_[i * static_cast<std::size_t>(dp_) + static_cast<std::size_t>(j)] =
          g_nodes_[gidx * static_cast<std::size_t>(dp_) + static_cast<std::size_t>(j)];
    }
    add_group_flows(dg.gidx, -1);
    recompute_group(dg.stage, dg.tpr);
    add_group_flows(dg.gidx, +1);
  }

  pending_cost_ = reduce();
  return pending_cost_;
}

void IncrementalLatencyEvaluator::commit() {
  assert(pending_ && "commit() without a pending propose()");
  cost_ = pending_cost_;
  pending_ = false;
}

void IncrementalLatencyEvaluator::rollback() {
  assert(pending_ && "rollback() without a pending propose()");
  parallel::apply_move(cur_, parallel::inverse_move(pending_move_), move_gpn_);
  for (std::size_t i = 0; i < dirty_cells_.size(); ++i) {
    tp_term_[static_cast<std::size_t>(dirty_cells_[i].idx)] = undo_tp_[i];
  }
  for (std::size_t i = 0; i < dirty_stages_.size(); ++i) {
    block_[static_cast<std::size_t>(dirty_stages_[i])] = undo_block_[i];
  }
  for (const PairDelta& pd : pair_deltas_) {
    pair_count_[static_cast<std::size_t>(pd.idx)] -= pd.delta;
  }
  for (const DirtyFlow& df : dirty_flows_) {
    // The committed pair id is a pure function of the (already restored)
    // mapping, so recompute it instead of keeping a per-flow undo slot.
    const int n1 = node_of_gpu_[static_cast<std::size_t>(cur_.gpu_of(df.hop, df.tpr, df.dpr))];
    const int n2 = node_of_gpu_[static_cast<std::size_t>(cur_.gpu_of(df.hop + 1, df.tpr, df.dpr))];
    flow_pair_[static_cast<std::size_t>(df.idx)] = n1 == n2 ? -1 : n1 * num_nodes_ + n2;
  }
  for (std::size_t i = 0; i < dirty_cols_.size(); ++i) {
    hop_[static_cast<std::size_t>(dirty_cols_[i].idx)] = undo_hop_[i];
  }
  for (std::size_t i = 0; i < dirty_groups_.size(); ++i) {
    const DirtyGroup& dg = dirty_groups_[i];
    const auto gidx = static_cast<std::size_t>(dg.gidx);
    add_group_flows(dg.gidx, -1);  // drop the proposed contribution
    g_min_intra_[gidx] = undo_g_min_intra_[i];
    g_min_inter_[gidx] = undo_g_min_inter_[i];
    g_max_same_[gidx] = undo_g_max_same_[i];
    g_num_nodes_[gidx] = undo_g_num_nodes_[i];
    for (int j = 0; j < g_num_nodes_[gidx]; ++j) {
      g_nodes_[gidx * static_cast<std::size_t>(dp_) + static_cast<std::size_t>(j)] =
          undo_g_nodes_[i * static_cast<std::size_t>(dp_) + static_cast<std::size_t>(j)];
    }
    g_flows_key_[gidx] = -1;  // the memo may hold the proposed-state term
    add_group_flows(dg.gidx, +1);  // restore the committed contribution
  }
  pending_ = false;
}

void IncrementalLatencyEvaluator::reset(const std::vector<int>& raw_perm) {
  cur_.set_raw(raw_perm);
  full_recompute();
}

}  // namespace pipette::estimators
