// Work-queue thread pool — the execution substrate of the configuration
// engine. One pool serves two layers at once: whole configure requests
// (engine::ConfigService::submit) and the per-request fan-out of candidate
// scoring / SA dedication passes (via the common::Executor interface the
// configurator is written against).
//
// parallel_for is caller-participating: the calling thread drains loop
// indices alongside the workers, so a task already running on the pool may
// itself call parallel_for without deadlock — in the worst case (all workers
// busy) the caller simply runs every index itself.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/executor.h"
#include "obs/registry.h"

namespace pipette::engine {

class ThreadPool final : public common::Executor {
 public:
  /// `threads` <= 0 picks std::thread::hardware_concurrency() (min 1).
  /// `metrics`, when non-null (not owned, must outlive the pool), receives
  /// engine.pool.* counters: tasks executed, parallel_for calls, loop indices
  /// split by who drained them (caller vs worker), and a queue-depth gauge.
  /// Scheduling is unchanged either way.
  explicit ThreadPool(int threads = 0, obs::Registry* metrics = nullptr);
  /// Drains the queue (every submitted task still runs), then joins.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }
  int concurrency() const override { return num_threads(); }

  /// Enqueues `fn`; the future reports its result (or its exception).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs fn(0..n-1) to completion, each index exactly once; rethrows the
  /// first task exception after all indices finish.
  void parallel_for(int n, const std::function<void(int)>& fn) override;

 private:
  void enqueue(std::function<void()> job);
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  // Inert handles when no registry was given (one-branch disabled cost).
  obs::Counter tasks_total_;
  obs::Counter pfor_calls_;
  obs::Counter pfor_caller_idx_;
  obs::Counter pfor_worker_idx_;
  obs::Gauge queue_depth_;
};

}  // namespace pipette::engine
