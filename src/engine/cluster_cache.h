// Cluster-fingerprint cache. Algorithm 1 pays two per-cluster costs that do
// not depend on the job being configured: profiling the bandwidth matrix
// (line 1) and training the MLP memory estimator (§VI). A stream of configure
// requests against the same fabric — the realistic serving workload — should
// pay them once. This cache memoizes both, each under the narrowest key that
// determines it:
//
//   * the bandwidth profile on Topology::fingerprint() (spec + the attained
//     link state of the current day) mixed with the profiling options — a new
//     day or heterogeneity universe means a new profile;
//   * the trained estimator on MlpMemoryEstimator::training_digest() — its
//     training data is simulated on sub-clusters of up to max_profile_nodes
//     from the spec alone, so it survives day drift, is shared across
//     same-spec fabrics, and survives elastic resizes above the clamp;
//   * the compute-shape profile cache on the spec's *compute* constants mixed
//     with the profiling options (estimators::compute_context_digest) — the
//     measured per-stage compute never reads link state, the node count, or
//     the day, so one shape cache serves every request, day, and resize on
//     the same hardware generation.
//
// Thread-safe: concurrent first requests for the same key compute the
// artifact exactly once (the rest block on its cell), and distinct keys
// compute concurrently.
//
// Bounded: day drift mints a fresh profile key per day, so a long-running
// service would otherwise accumulate stale bandwidth matrices forever. Both
// maps evict their oldest entry past a cap (FIFO); in-flight users keep
// evicted artifacts alive through their shared_ptrs, an evicted key simply
// recomputes on its next request.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "cluster/profiler.h"
#include "estimators/compute_profile.h"
#include "estimators/mlp_memory.h"
#include "obs/registry.h"

namespace pipette::engine {

struct ClusterCacheStats {
  int lookups = 0;
  int hits = 0;           ///< both artifacts already present (possibly still computing)
  int profiles_run = 0;   ///< actual profile_network invocations
  int trainings_run = 0;  ///< actual MlpMemoryEstimator trainings
  int compute_caches_created = 0;  ///< fresh (empty) shape caches minted
};

struct ClusterCacheOptions {
  int max_profiles = 64;        ///< distinct (fabric, day, options) snapshots kept
  int max_estimators = 16;      ///< distinct (spec, options) trained estimators kept
  int max_compute_caches = 16;  ///< distinct compute contexts' shape caches kept
  /// Mirrors every ClusterCacheStats field into engine.cluster_cache.*
  /// registry counters (not owned, must outlive the cache). Null keeps the
  /// historical stats_-only accounting.
  obs::Registry* metrics = nullptr;
};

class ClusterCache {
 public:
  struct Entry {
    std::shared_ptr<const cluster::ProfileResult> profile;
    std::shared_ptr<const estimators::MlpMemoryEstimator> memory;
    /// Shared, mutable shape cache for the compute context: requests populate
    /// it as they profile new shapes and later requests reuse them.
    std::shared_ptr<estimators::ComputeProfileCache> compute;
    // Per-artifact provenance of *this* lookup: true when the artifact's cell
    // pre-existed (the request reused another request's work — possibly still
    // being computed, on which it then blocked rather than recomputed).
    bool profile_was_cached = false;
    bool memory_was_cached = false;
    bool compute_was_cached = false;
  };

  explicit ClusterCache(ClusterCacheOptions opt = {});

  /// Returns the memoized artifacts for this cluster/options tuple, computing
  /// them (profile + estimator training on the gpt zoo) on first request.
  Entry get_or_compute(const cluster::Topology& topo, const cluster::ProfileOptions& profile_opt,
                       const estimators::MlpMemoryOptions& memory_opt,
                       const estimators::ComputeProfileOptions& compute_opt = {});

  /// Key of the memoized bandwidth profile.
  static std::uint64_t profile_key(const cluster::Topology& topo,
                                   const cluster::ProfileOptions& profile_opt);
  /// Key of the memoized trained estimator (the clamped training digest, so
  /// resizes above max_profile_nodes share the artifact).
  static std::uint64_t memory_key(const cluster::ClusterSpec& spec,
                                  const estimators::MlpMemoryOptions& memory_opt);
  /// Key of the memoized compute-shape cache.
  static std::uint64_t compute_key(const cluster::ClusterSpec& spec,
                                   const estimators::ComputeProfileOptions& compute_opt);

  ClusterCacheStats stats() const;
  int cached_profiles() const;
  int cached_estimators() const;
  int cached_compute_caches() const;

 private:
  template <typename T>
  struct Cell {
    std::mutex mu;
    std::shared_ptr<const T> value;  // null until computed
  };

  /// One bounded FIFO map: insertion order doubles as eviction order.
  template <typename T>
  struct CellMap {
    std::unordered_map<std::uint64_t, std::shared_ptr<Cell<T>>> cells;
    std::deque<std::uint64_t> order;

    /// Returns the cell for `key` (creating and bounding as needed) and
    /// whether it already existed. Caller must hold the cache mutex.
    std::pair<std::shared_ptr<Cell<T>>, bool> acquire(std::uint64_t key, int cap) {
      auto& slot = cells[key];
      const bool existed = static_cast<bool>(slot);
      if (!existed) {
        slot = std::make_shared<Cell<T>>();
        order.push_back(key);
        while (static_cast<int>(cells.size()) > cap && order.front() != key) {
          cells.erase(order.front());
          order.pop_front();
        }
      }
      return {slot, existed};
    }
  };

  ClusterCacheOptions opt_;
  mutable std::mutex mu_;  // guards the maps and stats_
  CellMap<cluster::ProfileResult> profiles_;
  CellMap<estimators::MlpMemoryEstimator> estimators_;
  /// Shape caches are cheap to mint (they start empty and fill lazily), so
  /// they live in a plain bounded FIFO map created under mu_ — no per-cell
  /// compute mutex needed.
  std::unordered_map<std::uint64_t, std::shared_ptr<estimators::ComputeProfileCache>> compute_;
  std::deque<std::uint64_t> compute_order_;
  ClusterCacheStats stats_;
  // Registry mirrors of stats_ (inert without ClusterCacheOptions::metrics).
  obs::Counter m_lookups_, m_hits_, m_profiles_run_, m_trainings_run_, m_compute_created_;
};

}  // namespace pipette::engine
