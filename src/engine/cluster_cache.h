// Cluster-fingerprint cache. Algorithm 1 pays two per-cluster costs that do
// not depend on the job being configured: profiling the bandwidth matrix
// (line 1) and training the MLP memory estimator (§VI). A stream of configure
// requests against the same fabric — the realistic serving workload — should
// pay them once. This cache memoizes both, each under the narrowest key that
// determines it:
//
//   * the bandwidth profile on Topology::fingerprint() (spec + the attained
//     link state of the current day) mixed with the profiling options — a new
//     day or heterogeneity universe means a new profile;
//   * the trained estimator on MlpMemoryEstimator::training_digest() — its
//     training data is simulated on sub-clusters of up to max_profile_nodes
//     from the spec alone, so it survives day drift, is shared across
//     same-spec fabrics, and survives elastic resizes above the clamp;
//   * the compute-shape profile cache on the spec's *compute* constants mixed
//     with the profiling options (estimators::compute_context_digest) — the
//     measured per-stage compute never reads link state, the node count, or
//     the day, so one shape cache serves every request, day, and resize on
//     the same hardware generation.
//
// Thread-safe: concurrent first requests for the same key compute the
// artifact exactly once (the rest block on its cell), and distinct keys
// compute concurrently.
//
// Bounded: day drift mints a fresh profile key per day, so a long-running
// service would otherwise accumulate stale bandwidth matrices forever. Each
// map evicts its oldest entry past its own cap (FIFO), and `max_entries`
// bounds the total across all three maps with a global LRU (touch-on-hit);
// in-flight users keep evicted artifacts alive through their shared_ptrs, an
// evicted key simply recomputes on its next request.
//
// Persistent: with `snapshot_dir` set, every computed profile and estimator
// is serialized by a write-behind persister thread (persist/persister.h) —
// atomic per-record files, jittered retries, the request path never touches
// disk — and compute-shape caches are snapshotted at flush()/shutdown.
// load() warm-starts the cells from such a directory, tolerating any
// corruption per record (typed persist::LoadReport), and tags warmed entries
// so requests can report `from_disk` provenance.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "cluster/profiler.h"
#include "estimators/compute_profile.h"
#include "estimators/mlp_memory.h"
#include "obs/registry.h"
#include "persist/persister.h"
#include "persist/store.h"

namespace pipette::engine {

struct ClusterCacheStats {
  int lookups = 0;
  int hits = 0;           ///< both artifacts already present (possibly still computing)
  int profiles_run = 0;   ///< actual profile_network invocations
  int trainings_run = 0;  ///< actual MlpMemoryEstimator trainings
  int compute_caches_created = 0;  ///< fresh (empty) shape caches minted
  int evictions = 0;               ///< entries dropped by any cap (FIFO or LRU)
};

struct ClusterCacheOptions {
  int max_profiles = 64;        ///< distinct (fabric, day, options) snapshots kept
  int max_estimators = 16;      ///< distinct (spec, options) trained estimators kept
  int max_compute_caches = 16;  ///< distinct compute contexts' shape caches kept
  /// Total artifacts across all three maps; past it the globally
  /// least-recently-used entry is evicted. Generous by default — the per-map
  /// caps dominate unless an operator tightens this.
  int max_entries = 256;
  /// Mirrors every ClusterCacheStats field into engine.cluster_cache.*
  /// registry counters (not owned, must outlive the cache). Null keeps the
  /// historical stats_-only accounting.
  obs::Registry* metrics = nullptr;

  // --- persistent tier (inert while snapshot_dir is empty) ---
  std::string snapshot_dir;         ///< record-per-file snapshot directory
  bool persist_write_behind = true; ///< false = synchronous writes (tests)
  int persist_retries = 3;          ///< extra write attempts on I/O failure
  double persist_backoff_s = 0.01;  ///< base of the jittered retry backoff
  std::uint64_t persist_seed = 0x5eed;  ///< retry-jitter stream seed
  /// Widens the torn-write window (crash-recovery CI); 0 in production.
  double persist_write_delay_s = 0.0;
};

class ClusterCache {
 public:
  struct Entry {
    std::shared_ptr<const cluster::ProfileResult> profile;
    std::shared_ptr<const estimators::MlpMemoryEstimator> memory;
    /// Shared, mutable shape cache for the compute context: requests populate
    /// it as they profile new shapes and later requests reuse them.
    std::shared_ptr<estimators::ComputeProfileCache> compute;
    // Per-artifact provenance of *this* lookup: true when the artifact's cell
    // pre-existed (the request reused another request's work — possibly still
    // being computed, on which it then blocked rather than recomputed).
    bool profile_was_cached = false;
    bool memory_was_cached = false;
    bool compute_was_cached = false;
    // True when the artifact was warm-started from a snapshot directory by
    // load() rather than computed in this process.
    bool profile_from_disk = false;
    bool memory_from_disk = false;
    bool compute_from_disk = false;
  };

  explicit ClusterCache(ClusterCacheOptions opt = {});
  /// Final flush: snapshots live compute caches and drains the persister.
  ~ClusterCache();

  /// Returns the memoized artifacts for this cluster/options tuple, computing
  /// them (profile + estimator training on the gpt zoo) on first request.
  Entry get_or_compute(const cluster::Topology& topo, const cluster::ProfileOptions& profile_opt,
                       const estimators::MlpMemoryOptions& memory_opt,
                       const estimators::ComputeProfileOptions& compute_opt = {});

  /// Warm-starts the cache from a snapshot directory. Every record is
  /// independently verified; corrupt, truncated, version-skewed, or foreign
  /// files are skipped into the returned report and the rest load — a fully
  /// corrupt directory simply leaves the cache empty. Never throws on bad
  /// data. Safe to call while requests are in flight (live cells win ties).
  persist::LoadReport load(const std::string& dir);
  /// load() from the configured snapshot_dir (no-op report when unset).
  persist::LoadReport load();

  /// Blocks until every enqueued record is on disk (or exhausted its
  /// retries), snapshotting live compute-shape caches first. The
  /// warm-restart handshake: flush(), then start the next service on the
  /// same directory.
  void flush();

  /// Key of the memoized bandwidth profile.
  static std::uint64_t profile_key(const cluster::Topology& topo,
                                   const cluster::ProfileOptions& profile_opt);
  /// Key of the memoized trained estimator (the clamped training digest, so
  /// resizes above max_profile_nodes share the artifact).
  static std::uint64_t memory_key(const cluster::ClusterSpec& spec,
                                  const estimators::MlpMemoryOptions& memory_opt);
  /// Key of the memoized compute-shape cache.
  static std::uint64_t compute_key(const cluster::ClusterSpec& spec,
                                   const estimators::ComputeProfileOptions& compute_opt);

  ClusterCacheStats stats() const;
  int cached_profiles() const;
  int cached_estimators() const;
  int cached_compute_caches() const;
  bool has_persistence() const { return persister_ != nullptr; }
  long persisted_records() const { return persister_ ? persister_->records_written() : 0; }
  long persist_failures() const { return persister_ ? persister_->write_failures() : 0; }

 private:
  template <typename T>
  struct Cell {
    std::mutex mu;
    std::shared_ptr<const T> value;  // null until computed
    bool from_disk = false;          ///< value installed by load(), not computed
  };

  /// One bounded map: insertion order drives the per-map FIFO cap, the
  /// last_used sequence numbers drive the cache-wide LRU cap.
  template <typename T>
  struct CellMap {
    std::unordered_map<std::uint64_t, std::shared_ptr<Cell<T>>> cells;
    std::deque<std::uint64_t> order;
    std::unordered_map<std::uint64_t, std::uint64_t> last_used;

    /// Returns the cell for `key` (creating and bounding as needed) and
    /// whether it already existed; stamps the key's recency with `seq`.
    /// Caller must hold the cache mutex.
    std::pair<std::shared_ptr<Cell<T>>, bool> acquire(std::uint64_t key, int cap,
                                                      std::uint64_t seq, int* evicted) {
      auto& slot = cells[key];
      const bool existed = static_cast<bool>(slot);
      if (!existed) {
        slot = std::make_shared<Cell<T>>();
        order.push_back(key);
        while (static_cast<int>(cells.size()) > cap && order.front() != key) {
          erase(order.front());
          ++*evicted;
        }
      }
      last_used[key] = seq;
      return {slot, existed};
    }

    void erase(std::uint64_t key) {
      cells.erase(key);
      last_used.erase(key);
      for (auto it = order.begin(); it != order.end(); ++it) {
        if (*it == key) {
          order.erase(it);
          break;
        }
      }
    }

    /// Least-recently-used key whose stamp is strictly older than `before`.
    std::optional<std::pair<std::uint64_t, std::uint64_t>> lru_before(std::uint64_t before) const {
      std::optional<std::pair<std::uint64_t, std::uint64_t>> best;  // (key, seq)
      for (const auto& [key, seq] : last_used) {
        if (seq < before && (!best || seq < best->second)) best = {{key, seq}};
      }
      return best;
    }
  };

  struct ComputeSlot {
    std::shared_ptr<estimators::ComputeProfileCache> cache;
    bool from_disk = false;
  };

  /// Evicts globally least-recent entries until the total fits max_entries.
  /// Entries touched at or after `protect_seq` (this lookup's own artifacts)
  /// are never evicted. Caller must hold mu_.
  void enforce_total_cap_locked(std::uint64_t protect_seq, int* evicted);
  void erase_compute_locked(std::uint64_t key);

  ClusterCacheOptions opt_;
  mutable std::mutex mu_;  // guards the maps, stats_, and seq_
  CellMap<cluster::ProfileResult> profiles_;
  CellMap<estimators::MlpMemoryEstimator> estimators_;
  /// Shape caches are cheap to mint (they start empty and fill lazily), so
  /// they live in a plain bounded FIFO map created under mu_ — no per-cell
  /// compute mutex needed.
  std::unordered_map<std::uint64_t, ComputeSlot> compute_;
  std::deque<std::uint64_t> compute_order_;
  std::unordered_map<std::uint64_t, std::uint64_t> compute_last_used_;
  std::uint64_t seq_ = 0;  ///< monotonic recency clock (ticks per lookup)
  ClusterCacheStats stats_;
  /// Write-behind snapshot writer; null while snapshot_dir is empty.
  std::unique_ptr<persist::Persister> persister_;
  // Registry mirrors of stats_ (inert without ClusterCacheOptions::metrics).
  obs::Counter m_lookups_, m_hits_, m_profiles_run_, m_trainings_run_, m_compute_created_;
  obs::Counter m_evictions_, m_records_loaded_, m_records_skipped_;
};

}  // namespace pipette::engine
