// The batched front-end of the configuration engine: a stream of
// (job, topology) requests fans out across one shared thread pool and one
// cluster-fingerprint cache. Each submit returns a future; a whole scenario
// sweep (the scalability and batch-sensitivity studies) is one `sweep` call.
//
// Determinism: with an iteration-capped SA budget (SaOptions::max_iters set,
// generous time limit), results are bit-identical for any thread count —
// candidate scoring merges in canonical order and SA seeds derive from the
// candidate, not the schedule (see PipetteOptions::executor). This extends
// to multi-chain annealing (PipetteOptions::sa_chains > 1): chain seeds
// derive from the candidate seed and the chain index, chains ride the same
// caller-participating pool as the per-candidate fan-out, and the best-of
// merge is canonical — so a request's dedicated mapping is a pure function
// of (topology fingerprint, job, options), never of pool size.
#pragma once

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/pipette_configurator.h"
#include "engine/cluster_cache.h"
#include "engine/thread_pool.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace pipette::engine {

struct ConfigServiceOptions {
  /// Worker threads in the pool; <= 0 picks hardware concurrency.
  int threads = 0;
  /// Also fan each request's candidate scoring and SA passes across the pool
  /// (recommended; disable to parallelize across requests only).
  bool parallel_candidates = true;
  /// Bounds on the per-cluster artifact cache.
  ClusterCacheOptions cache;
  /// Template options for every request. `memory`, `profile_snapshot`,
  /// `compute_cache`, `executor`, `trace_sink`, and `metrics` are overwritten
  /// per request from the cache, pool, and the two fields below.
  core::PipetteOptions pipette;
  /// Span tracer every request, SA rung, and cache event is emitted into (not
  /// owned; must outlive the service). One sink across a sweep() renders the
  /// whole study as a single Perfetto timeline. Null disables tracing.
  obs::TraceSink* trace = nullptr;
  /// Metrics registry; null makes the service own a private obs::Registry so
  /// metrics_text() always works and tenants stay isolated by default.
  obs::Registry* metrics = nullptr;
};

class ConfigService {
 public:
  explicit ConfigService(ConfigServiceOptions opt);

  /// Enqueues one configure request. The topology is captured by value so the
  /// caller may discard it; the future delivers the full result (or the
  /// configurator's exception).
  std::future<core::ConfiguratorResult> submit(cluster::Topology topo, model::TrainingJob job);

  /// Enqueues an elastic re-configuration: the same request as submit(), plus
  /// the previous result so the configurator can warm-start from it — the
  /// trained estimator (when the clamped training digest survives the
  /// resize), the per-plan memory estimates of surviving plans, and an SA
  /// pass seeded from the projected previous placement. A resize event is
  /// thus one API call: service.reconfigure(new_topo, job, old_result).
  std::future<core::ConfiguratorResult> reconfigure(cluster::Topology topo, model::TrainingJob job,
                                                    core::ConfiguratorResult previous);

  /// Submits every job against one cluster and waits for all of them;
  /// results are in job order.
  std::vector<core::ConfiguratorResult> sweep(const cluster::Topology& topo,
                                              const std::vector<model::TrainingJob>& jobs);

  ClusterCacheStats cache_stats() const { return cache_.stats(); }
  ThreadPool& pool() { return pool_; }

  /// The registry the engine's metrics land in (the caller's via
  /// ConfigServiceOptions::metrics, else the service-owned one).
  obs::Registry& metrics() { return *metrics_; }
  /// Prometheus text exposition of metrics() — the scrape endpoint body.
  std::string metrics_text() const { return metrics_->prometheus_text(); }

 private:
  core::ConfiguratorResult configure_one(const cluster::Topology& topo,
                                         const model::TrainingJob& job,
                                         const core::ConfiguratorResult* previous);

  ConfigServiceOptions opt_;
  // Declared before cache_ and pool_, which hold handles into the registry.
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  ClusterCache cache_;
  // Last member: destroyed first, so the pool drains queued configure tasks
  // (which touch cache_ and opt_) while both are still alive.
  ThreadPool pool_;
};

}  // namespace pipette::engine
