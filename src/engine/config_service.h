// The batched front-end of the configuration engine: a stream of
// (job, topology) requests fans out across one shared thread pool and one
// cluster-fingerprint cache. Each submit returns a future; a whole scenario
// sweep (the scalability and batch-sensitivity studies) is one `sweep` call.
//
// Determinism: with an iteration-capped SA budget (SaOptions::max_iters set,
// generous time limit), results are bit-identical for any thread count —
// candidate scoring merges in canonical order and SA seeds derive from the
// candidate, not the schedule (see PipetteOptions::executor). This extends
// to multi-chain annealing (PipetteOptions::sa_chains > 1): chain seeds
// derive from the candidate seed and the chain index, chains ride the same
// caller-participating pool as the per-candidate fan-out, and the best-of
// merge is canonical — so a request's dedicated mapping is a pure function
// of (topology fingerprint, job, options), never of pool size.
//
// Robustness: submit_request() is the typed-outcome surface — every request
// terminates with a ServiceResult whose status says what happened (a plan,
// no feasible plan, a typed rejection, a typed failure) instead of an
// exception racing through a future. Admission is bounded (max_pending),
// transient profiling failures retry with jittered exponential backoff, and
// per-request deadlines propagate into the configurator's anytime SA budget
// (best-so-far plan + PlanHealth::deadline_exceeded on overrun). The legacy
// submit()/reconfigure() surface is unchanged: unbounded admission,
// exceptions through the future.
#pragma once

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "core/pipette_configurator.h"
#include "engine/cluster_cache.h"
#include "engine/faults.h"
#include "engine/thread_pool.h"
#include "obs/registry.h"
#include "obs/trace.h"

namespace pipette::engine {

/// Typed request outcome — the error taxonomy of the service surface.
enum class ServiceStatus {
  kOk = 0,             ///< result.found, plan attached
  kNoFeasiblePlan,     ///< pipeline ran clean but every candidate was rejected
  kRejectedQueueFull,  ///< bounded admission queue was full (backpressure)
  kProfileFailed,      ///< transient profiling failures exhausted the retries
  kInternalError,      ///< unexpected exception; error carries what()
};

const char* to_string(ServiceStatus s);

struct ServiceResult {
  ServiceStatus status = ServiceStatus::kOk;
  /// Human-readable detail for non-kOk statuses.
  std::string error;
  /// Always present; meaningful for kOk (the plan + health) and
  /// kNoFeasiblePlan (phase accounting, health of the degraded snapshot).
  core::ConfiguratorResult result;
  bool ok() const { return status == ServiceStatus::kOk; }
};

/// Per-request knobs of the robust surface.
struct RequestOptions {
  /// Wall-clock budget measured from submission (queue wait counts: a
  /// deadline is a promise to the caller, not to the scheduler). Propagated
  /// into PipetteOptions::deadline_s as the remaining budget when the
  /// request starts; infinite (default) never checks a clock.
  double deadline_s = std::numeric_limits<double>::infinity();
  /// Retries after a transient profiling failure before kProfileFailed.
  int profile_retries = 2;
  /// Base of the jittered exponential backoff between retries:
  /// base * 2^attempt * uniform(0.5, 1), jitter from a seed-derived stream.
  double retry_backoff_s = 0.02;
};

struct ConfigServiceOptions {
  /// Worker threads in the pool; <= 0 picks hardware concurrency.
  int threads = 0;
  /// Also fan each request's candidate scoring and SA passes across the pool
  /// (recommended; disable to parallelize across requests only).
  bool parallel_candidates = true;
  /// Bounds on the per-cluster artifact cache.
  ClusterCacheOptions cache;
  /// Template options for every request. `memory`, `profile_snapshot`,
  /// `compute_cache`, `executor`, `trace_sink`, and `metrics` are overwritten
  /// per request from the cache, pool, and the two fields below.
  core::PipetteOptions pipette;
  /// Span tracer every request, SA rung, and cache event is emitted into (not
  /// owned; must outlive the service). One sink across a sweep() renders the
  /// whole study as a single Perfetto timeline. Null disables tracing.
  obs::TraceSink* trace = nullptr;
  /// Metrics registry; null makes the service own a private obs::Registry so
  /// metrics_text() always works and tenants stay isolated by default.
  obs::Registry* metrics = nullptr;
  /// Admission bound: submit_request() rejects (kRejectedQueueFull) while
  /// this many requests are admitted and unfinished. 0 = unbounded. The
  /// legacy submit()/reconfigure()/sweep() surface bypasses the bound.
  int max_pending = 0;
  /// Defaults for requests submitted without explicit RequestOptions.
  RequestOptions request_defaults;
  /// Deterministic chaos schedule: when enabled, the service owns a
  /// FaultInjector wired into every profiling run (see engine/faults.h).
  FaultOptions faults;
};

class ConfigService {
 public:
  explicit ConfigService(ConfigServiceOptions opt);

  /// Enqueues one configure request. The topology is captured by value so the
  /// caller may discard it; the future delivers the full result (or the
  /// configurator's exception).
  std::future<core::ConfiguratorResult> submit(cluster::Topology topo, model::TrainingJob job);

  /// Enqueues an elastic re-configuration: the same request as submit(), plus
  /// the previous result so the configurator can warm-start from it — the
  /// trained estimator (when the clamped training digest survives the
  /// resize), the per-plan memory estimates of surviving plans, and an SA
  /// pass seeded from the projected previous placement. A resize event is
  /// thus one API call: service.reconfigure(new_topo, job, old_result).
  std::future<core::ConfiguratorResult> reconfigure(cluster::Topology topo, model::TrainingJob job,
                                                    core::ConfiguratorResult previous);

  /// The robust surface: admission-bounded, deadline-aware, retrying, and
  /// exception-free — the future always delivers a ServiceResult, never
  /// throws. A rejection (kRejectedQueueFull) returns an already-resolved
  /// future without enqueueing work.
  std::future<ServiceResult> submit_request(cluster::Topology topo, model::TrainingJob job,
                                            RequestOptions ro);
  /// Same, with ConfigServiceOptions::request_defaults.
  std::future<ServiceResult> submit_request(cluster::Topology topo, model::TrainingJob job);

  /// Submits every job against one cluster and waits for all of them;
  /// results are in job order. Built on submit_request: one job's failure
  /// (fault, OOM-everything, internal error) cannot abort the sweep — its
  /// slot reports found == false and the surviving jobs return normally.
  std::vector<core::ConfiguratorResult> sweep(const cluster::Topology& topo,
                                              const std::vector<model::TrainingJob>& jobs);

  /// sweep() with the full per-job outcomes (status + error + result).
  std::vector<ServiceResult> sweep_requests(const cluster::Topology& topo,
                                            const std::vector<model::TrainingJob>& jobs,
                                            RequestOptions ro);

  ClusterCacheStats cache_stats() const { return cache_.stats(); }
  ThreadPool& pool() { return pool_; }

  /// What the warm start found on disk (empty/attempted=false unless
  /// ClusterCacheOptions::snapshot_dir was set at construction — the cache is
  /// loaded once, before the service accepts work).
  const persist::LoadReport& load_report() const { return load_report_; }
  /// Blocks until every computed artifact (plus a snapshot of the live
  /// compute-shape caches) is on disk. Call before a planned restart; crashes
  /// are covered anyway by the write-behind persister + atomic records.
  void flush_snapshots() { cache_.flush(); }
  /// Records persisted / dropped-after-retries so far (0 without a
  /// snapshot_dir).
  long persisted_records() const { return cache_.persisted_records(); }
  long persist_failures() const { return cache_.persist_failures(); }

  /// Admitted-and-unfinished requests on the robust surface (the quantity
  /// max_pending bounds).
  int pending() const { return pending_.load(std::memory_order_relaxed); }
  /// The service's fault injector (null unless ConfigServiceOptions::faults
  /// is enabled) — chaos tests inspect the resolved schedule through this.
  const FaultInjector* fault_injector() const { return faults_.get(); }

  /// The registry the engine's metrics land in (the caller's via
  /// ConfigServiceOptions::metrics, else the service-owned one).
  obs::Registry& metrics() { return *metrics_; }
  /// Prometheus text exposition of metrics() — the scrape endpoint body.
  std::string metrics_text() const { return metrics_->prometheus_text(); }

 private:
  core::ConfiguratorResult configure_one(const cluster::Topology& topo,
                                         const model::TrainingJob& job,
                                         const core::ConfiguratorResult* previous,
                                         const RequestOptions& ro,
                                         const common::Stopwatch& admitted);
  /// configure_one with the exception surface folded into ServiceStatus.
  ServiceResult serve_one(const cluster::Topology& topo, const model::TrainingJob& job,
                          const RequestOptions& ro, const common::Stopwatch& admitted);
  /// Profiles-or-fetches the cluster artifacts, retrying transient profile
  /// failures with jittered exponential backoff. Writes the retry count.
  ClusterCache::Entry artifacts_with_retry(const cluster::Topology& topo,
                                           const model::TrainingJob& job,
                                           const RequestOptions& ro,
                                           const common::Stopwatch& admitted, int* retries);

  ConfigServiceOptions opt_;
  // Declared before cache_ and pool_, which hold handles into the registry.
  std::unique_ptr<obs::Registry> owned_metrics_;
  obs::Registry* metrics_ = nullptr;
  /// Owned chaos schedule; opt_.pipette.profile.faults points at it so every
  /// profiling run (and every profile cache key) sees the same schedule.
  std::unique_ptr<FaultInjector> faults_;
  std::atomic<int> pending_{0};
  ClusterCache cache_;
  /// Outcome of the construction-time warm start (see load_report()).
  persist::LoadReport load_report_;
  // Last member: destroyed first, so the pool drains queued configure tasks
  // (which touch cache_ and opt_) while both are still alive.
  ThreadPool pool_;
};

}  // namespace pipette::engine
