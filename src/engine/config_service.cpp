#include "engine/config_service.h"

#include <chrono>
#include <cmath>
#include <thread>

#include "common/hashing.h"
#include "common/rng.h"
#include "obs/json.h"

namespace pipette::engine {

namespace {

ClusterCacheOptions with_metrics(ClusterCacheOptions cache, obs::Registry* metrics) {
  cache.metrics = metrics;
  return cache;
}

/// Decrements the pending count when a request finishes, however it exits.
struct PendingGuard {
  std::atomic<int>* pending;
  obs::Registry* metrics;
  ~PendingGuard() {
    const int now = pending->fetch_sub(1, std::memory_order_relaxed) - 1;
    if (metrics != nullptr) metrics->gauge("pipette.service.pending").set(now);
  }
};

}  // namespace

const char* to_string(ServiceStatus s) {
  switch (s) {
    case ServiceStatus::kOk: return "ok";
    case ServiceStatus::kNoFeasiblePlan: return "no_feasible_plan";
    case ServiceStatus::kRejectedQueueFull: return "rejected_queue_full";
    case ServiceStatus::kProfileFailed: return "profile_failed";
    case ServiceStatus::kInternalError: return "internal_error";
  }
  return "unknown";
}

ConfigService::ConfigService(ConfigServiceOptions opt)
    : opt_(std::move(opt)),
      owned_metrics_(opt_.metrics ? nullptr : std::make_unique<obs::Registry>()),
      metrics_(opt_.metrics ? opt_.metrics : owned_metrics_.get()),
      cache_(with_metrics(opt_.cache, metrics_)),
      pool_(opt_.threads, metrics_) {
  if (opt_.faults.enabled) {
    FaultOptions fo = opt_.faults;
    fo.metrics = metrics_;
    faults_ = std::make_unique<FaultInjector>(fo);
    // Every profiling run — and every profile cache key, via the hook's
    // fingerprint — now sees the schedule.
    opt_.pipette.profile.faults = faults_.get();
  }
  if (!opt_.cache.snapshot_dir.empty()) {
    // Warm start before the service accepts work: whatever survives
    // verification fills the cache, whatever doesn't lands in the report —
    // a fully corrupt directory just means a cold start, never a failed
    // construction.
    load_report_ = cache_.load();
  }
}

std::future<core::ConfiguratorResult> ConfigService::submit(cluster::Topology topo,
                                                            model::TrainingJob job) {
  const common::Stopwatch admitted;
  return pool_.submit([this, topo = std::move(topo), job = std::move(job), admitted] {
    return configure_one(topo, job, nullptr, opt_.request_defaults, admitted);
  });
}

std::future<core::ConfiguratorResult> ConfigService::reconfigure(
    cluster::Topology topo, model::TrainingJob job, core::ConfiguratorResult previous) {
  const common::Stopwatch admitted;
  return pool_.submit([this, topo = std::move(topo), job = std::move(job),
                       previous = std::move(previous), admitted] {
    return configure_one(topo, job, &previous, opt_.request_defaults, admitted);
  });
}

std::future<ServiceResult> ConfigService::submit_request(cluster::Topology topo,
                                                         model::TrainingJob job,
                                                         RequestOptions ro) {
  // Bounded admission: CAS so concurrent submitters can never overshoot the
  // bound. A rejection is an already-resolved future — typed backpressure,
  // not an exception, and no task ever enters the pool.
  int cur = pending_.load(std::memory_order_relaxed);
  do {
    if (opt_.max_pending > 0 && cur >= opt_.max_pending) {
      metrics_->counter("pipette.service.rejected_queue_full").inc();
      if (opt_.trace) opt_.trace->instant("request.rejected");
      ServiceResult sr;
      sr.status = ServiceStatus::kRejectedQueueFull;
      sr.error = "admission queue full (" + std::to_string(cur) + "/" +
                 std::to_string(opt_.max_pending) + " pending)";
      std::promise<ServiceResult> p;
      p.set_value(std::move(sr));
      return p.get_future();
    }
  } while (!pending_.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed));
  metrics_->gauge("pipette.service.pending").set(cur + 1);

  const common::Stopwatch admitted;
  return pool_.submit([this, topo = std::move(topo), job = std::move(job), ro, admitted] {
    const PendingGuard guard{&pending_, metrics_};
    return serve_one(topo, job, ro, admitted);
  });
}

std::future<ServiceResult> ConfigService::submit_request(cluster::Topology topo,
                                                         model::TrainingJob job) {
  return submit_request(std::move(topo), std::move(job), opt_.request_defaults);
}

std::vector<ServiceResult> ConfigService::sweep_requests(
    const cluster::Topology& topo, const std::vector<model::TrainingJob>& jobs,
    RequestOptions ro) {
  std::vector<std::future<ServiceResult>> futs;
  futs.reserve(jobs.size());
  for (const auto& job : jobs) futs.push_back(submit_request(topo, job, ro));
  std::vector<ServiceResult> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

std::vector<core::ConfiguratorResult> ConfigService::sweep(
    const cluster::Topology& topo, const std::vector<model::TrainingJob>& jobs) {
  // One throwing job used to abort the whole sweep at future::get(); the
  // typed surface contains each job's outcome, so the survivors always
  // return. Failed jobs yield found == false with the status in explain()'s
  // place (the error string is not lost — sweep_requests exposes it).
  std::vector<core::ConfiguratorResult> out;
  out.reserve(jobs.size());
  for (ServiceResult& sr : sweep_requests(topo, jobs, opt_.request_defaults)) {
    if (!sr.ok()) sr.result.found = false;
    out.push_back(std::move(sr.result));
  }
  return out;
}

ServiceResult ConfigService::serve_one(const cluster::Topology& topo,
                                       const model::TrainingJob& job, const RequestOptions& ro,
                                       const common::Stopwatch& admitted) {
  ServiceResult sr;
  try {
    sr.result = configure_one(topo, job, nullptr, ro, admitted);
    if (!sr.result.found) {
      sr.status = ServiceStatus::kNoFeasiblePlan;
      sr.error = "no candidate plan fits the cluster";
    }
  } catch (const cluster::ProfileTransientError& e) {
    sr.status = ServiceStatus::kProfileFailed;
    sr.error = e.what();
    metrics_->counter("pipette.service.profile_failed").inc();
  } catch (const std::exception& e) {
    sr.status = ServiceStatus::kInternalError;
    sr.error = e.what();
    metrics_->counter("pipette.service.internal_error").inc();
  }
  return sr;
}

ClusterCache::Entry ConfigService::artifacts_with_retry(const cluster::Topology& topo,
                                                        const model::TrainingJob& job,
                                                        const RequestOptions& ro,
                                                        const common::Stopwatch& admitted,
                                                        int* retries) {
  // Jitter stream derived from the profile seed and the job: deterministic
  // per request, decorrelated across a sweep (no retry thundering herd).
  common::Rng jitter(
      common::hash_combine(common::hash_combine(opt_.pipette.profile.seed, model::job_digest(job)),
                           topo.fingerprint()));
  for (int attempt = 0;; ++attempt) {
    try {
      return cache_.get_or_compute(topo, opt_.pipette.profile, opt_.pipette.memory_training,
                                   opt_.pipette.compute_profile);
    } catch (const cluster::ProfileTransientError&) {
      if (attempt >= ro.profile_retries) throw;
      // Give up retrying once the deadline is already blown — the typed
      // kProfileFailed answer beats burning backoff sleep past the budget.
      if (std::isfinite(ro.deadline_s) && admitted.seconds() >= ro.deadline_s) throw;
      ++*retries;
      metrics_->counter("pipette.service.profile_retries").inc();
      if (opt_.trace) opt_.trace->instant("profile.retry");
      const double backoff =
          ro.retry_backoff_s * static_cast<double>(1 << attempt) * jitter.uniform(0.5, 1.0);
      if (backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      }
    }
  }
}

core::ConfiguratorResult ConfigService::configure_one(const cluster::Topology& topo,
                                                      const model::TrainingJob& job,
                                                      const core::ConfiguratorResult* previous,
                                                      const RequestOptions& ro,
                                                      const common::Stopwatch& admitted) {
  obs::TraceSink* const sink = opt_.trace;
  std::string args;
  if (sink) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("job");
    w.value(job.model.name);
    w.key("gpus");
    w.value(topo.num_gpus());
    w.key("warm");
    w.value(previous != nullptr);
    w.end_object();
    args = w.str();
  }
  obs::Span request_span(sink, "request", std::move(args));
  int retries = 0;
  const ClusterCache::Entry entry = artifacts_with_retry(topo, job, ro, admitted, &retries);
  if (sink) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("profile");
    w.value(entry.profile_was_cached ? "hit" : "miss");
    w.key("memory");
    w.value(entry.memory_was_cached ? "hit" : "miss");
    w.key("compute");
    w.value(entry.compute_was_cached ? "hit" : "miss");
    w.end_object();
    sink->instant("cluster_cache", w.str());
  }
  core::PipetteOptions po = opt_.pipette;
  po.memory = entry.memory;
  po.profile_snapshot = entry.profile;
  po.compute_cache = entry.compute;
  po.executor = opt_.parallel_candidates ? &pool_ : nullptr;
  po.trace_sink = sink;
  po.metrics = metrics_;
  const bool deadlined = std::isfinite(ro.deadline_s);
  if (deadlined) {
    // The configurator budgets from its own entry; hand it what remains of
    // the caller's budget after queue wait and profiling retries.
    po.deadline_s = std::max(0.0, ro.deadline_s - admitted.seconds());
  }
  core::PipetteConfigurator configurator(std::move(po));
  core::ConfiguratorResult res = previous ? configurator.reconfigure(topo, job, *previous)
                                          : configurator.configure(topo, job);
  // The configurator infers artifact provenance from what it was handed; the
  // cache knows it outright, so its answer wins for engine-served requests.
  res.profile_cache_hit = entry.profile_was_cached;
  res.memory_cache_hit = entry.memory_was_cached;
  res.compute_cache_hit = entry.compute_was_cached;
  res.profile_from_disk = entry.profile_from_disk;
  res.memory_from_disk = entry.memory_from_disk;
  res.compute_from_disk = entry.compute_from_disk;
  res.health.profile_retries = retries;
  if (deadlined) {
    // Service-level accounting supersedes the configurator's: the promise
    // was measured from submission, not configure() entry.
    res.health.deadline_s = ro.deadline_s;
    res.health.overrun_s = std::max(0.0, admitted.seconds() - ro.deadline_s);
    metrics_->counter("pipette.deadline.requests").inc();
    metrics_->histogram("pipette.deadline.overrun_s", obs::Registry::latency_bounds_s())
        .observe(res.health.overrun_s);
    if (res.health.overrun_s > 0.0) metrics_->counter("pipette.deadline.overruns").inc();
  }
  return res;
}

}  // namespace pipette::engine
