#include "engine/config_service.h"

#include "obs/json.h"

namespace pipette::engine {

namespace {

ClusterCacheOptions with_metrics(ClusterCacheOptions cache, obs::Registry* metrics) {
  cache.metrics = metrics;
  return cache;
}

}  // namespace

ConfigService::ConfigService(ConfigServiceOptions opt)
    : opt_(std::move(opt)),
      owned_metrics_(opt_.metrics ? nullptr : std::make_unique<obs::Registry>()),
      metrics_(opt_.metrics ? opt_.metrics : owned_metrics_.get()),
      cache_(with_metrics(opt_.cache, metrics_)),
      pool_(opt_.threads, metrics_) {}

std::future<core::ConfiguratorResult> ConfigService::submit(cluster::Topology topo,
                                                            model::TrainingJob job) {
  return pool_.submit([this, topo = std::move(topo), job = std::move(job)] {
    return configure_one(topo, job, nullptr);
  });
}

std::future<core::ConfiguratorResult> ConfigService::reconfigure(
    cluster::Topology topo, model::TrainingJob job, core::ConfiguratorResult previous) {
  return pool_.submit(
      [this, topo = std::move(topo), job = std::move(job), previous = std::move(previous)] {
        return configure_one(topo, job, &previous);
      });
}

std::vector<core::ConfiguratorResult> ConfigService::sweep(
    const cluster::Topology& topo, const std::vector<model::TrainingJob>& jobs) {
  std::vector<std::future<core::ConfiguratorResult>> futs;
  futs.reserve(jobs.size());
  for (const auto& job : jobs) futs.push_back(submit(topo, job));
  std::vector<core::ConfiguratorResult> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

core::ConfiguratorResult ConfigService::configure_one(const cluster::Topology& topo,
                                                      const model::TrainingJob& job,
                                                      const core::ConfiguratorResult* previous) {
  obs::TraceSink* const sink = opt_.trace;
  std::string args;
  if (sink) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("job");
    w.value(job.model.name);
    w.key("gpus");
    w.value(topo.num_gpus());
    w.key("warm");
    w.value(previous != nullptr);
    w.end_object();
    args = w.str();
  }
  obs::Span request_span(sink, "request", std::move(args));
  const ClusterCache::Entry entry = cache_.get_or_compute(
      topo, opt_.pipette.profile, opt_.pipette.memory_training, opt_.pipette.compute_profile);
  if (sink) {
    obs::JsonWriter w;
    w.begin_object();
    w.key("profile");
    w.value(entry.profile_was_cached ? "hit" : "miss");
    w.key("memory");
    w.value(entry.memory_was_cached ? "hit" : "miss");
    w.key("compute");
    w.value(entry.compute_was_cached ? "hit" : "miss");
    w.end_object();
    sink->instant("cluster_cache", w.str());
  }
  core::PipetteOptions po = opt_.pipette;
  po.memory = entry.memory;
  po.profile_snapshot = entry.profile;
  po.compute_cache = entry.compute;
  po.executor = opt_.parallel_candidates ? &pool_ : nullptr;
  po.trace_sink = sink;
  po.metrics = metrics_;
  core::PipetteConfigurator configurator(std::move(po));
  core::ConfiguratorResult res = previous ? configurator.reconfigure(topo, job, *previous)
                                          : configurator.configure(topo, job);
  // The configurator infers artifact provenance from what it was handed; the
  // cache knows it outright, so its answer wins for engine-served requests.
  res.profile_cache_hit = entry.profile_was_cached;
  res.memory_cache_hit = entry.memory_was_cached;
  res.compute_cache_hit = entry.compute_was_cached;
  return res;
}

}  // namespace pipette::engine
