#include "engine/config_service.h"

namespace pipette::engine {

ConfigService::ConfigService(ConfigServiceOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {}

std::future<core::ConfiguratorResult> ConfigService::submit(cluster::Topology topo,
                                                            model::TrainingJob job) {
  return pool_.submit([this, topo = std::move(topo), job = std::move(job)] {
    return configure_one(topo, job);
  });
}

std::vector<core::ConfiguratorResult> ConfigService::sweep(
    const cluster::Topology& topo, const std::vector<model::TrainingJob>& jobs) {
  std::vector<std::future<core::ConfiguratorResult>> futs;
  futs.reserve(jobs.size());
  for (const auto& job : jobs) futs.push_back(submit(topo, job));
  std::vector<core::ConfiguratorResult> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

core::ConfiguratorResult ConfigService::configure_one(const cluster::Topology& topo,
                                                      const model::TrainingJob& job) {
  const ClusterCache::Entry entry =
      cache_.get_or_compute(topo, opt_.pipette.profile, opt_.pipette.memory_training);
  core::PipetteOptions po = opt_.pipette;
  po.memory = entry.memory;
  po.profile_snapshot = entry.profile;
  po.executor = opt_.parallel_candidates ? &pool_ : nullptr;
  core::PipetteConfigurator configurator(std::move(po));
  return configurator.configure(topo, job);
}

}  // namespace pipette::engine
