#include "engine/config_service.h"

namespace pipette::engine {

ConfigService::ConfigService(ConfigServiceOptions opt)
    : opt_(std::move(opt)), pool_(opt_.threads) {}

std::future<core::ConfiguratorResult> ConfigService::submit(cluster::Topology topo,
                                                            model::TrainingJob job) {
  return pool_.submit([this, topo = std::move(topo), job = std::move(job)] {
    return configure_one(topo, job, nullptr);
  });
}

std::future<core::ConfiguratorResult> ConfigService::reconfigure(
    cluster::Topology topo, model::TrainingJob job, core::ConfiguratorResult previous) {
  return pool_.submit(
      [this, topo = std::move(topo), job = std::move(job), previous = std::move(previous)] {
        return configure_one(topo, job, &previous);
      });
}

std::vector<core::ConfiguratorResult> ConfigService::sweep(
    const cluster::Topology& topo, const std::vector<model::TrainingJob>& jobs) {
  std::vector<std::future<core::ConfiguratorResult>> futs;
  futs.reserve(jobs.size());
  for (const auto& job : jobs) futs.push_back(submit(topo, job));
  std::vector<core::ConfiguratorResult> out;
  out.reserve(futs.size());
  for (auto& f : futs) out.push_back(f.get());
  return out;
}

core::ConfiguratorResult ConfigService::configure_one(const cluster::Topology& topo,
                                                      const model::TrainingJob& job,
                                                      const core::ConfiguratorResult* previous) {
  const ClusterCache::Entry entry = cache_.get_or_compute(
      topo, opt_.pipette.profile, opt_.pipette.memory_training, opt_.pipette.compute_profile);
  core::PipetteOptions po = opt_.pipette;
  po.memory = entry.memory;
  po.profile_snapshot = entry.profile;
  po.compute_cache = entry.compute;
  po.executor = opt_.parallel_candidates ? &pool_ : nullptr;
  core::PipetteConfigurator configurator(std::move(po));
  return previous ? configurator.reconfigure(topo, job, *previous)
                  : configurator.configure(topo, job);
}

}  // namespace pipette::engine
