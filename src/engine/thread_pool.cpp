#include "engine/thread_pool.h"

#include <atomic>
#include <memory>

namespace pipette::engine {

ThreadPool::ThreadPool(int threads, obs::Registry* metrics) {
  if (threads <= 0) threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 0) threads = 1;
  if (metrics) {
    tasks_total_ = metrics->counter("engine.pool.tasks");
    pfor_calls_ = metrics->counter("engine.pool.parallel_for.calls");
    pfor_caller_idx_ = metrics->counter("engine.pool.parallel_for.caller_indices");
    pfor_worker_idx_ = metrics->counter("engine.pool.parallel_for.worker_indices");
    queue_depth_ = metrics->gauge("engine.pool.queue_depth");
    metrics->gauge("engine.pool.threads").set(threads);
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> job) {
  {
    std::lock_guard lk(mu_);
    queue_.push_back(std::move(job));
    queue_depth_.set(static_cast<long>(queue_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_.set(static_cast<long>(queue_.size()));
    }
    tasks_total_.inc();
    job();
  }
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;

  // Shared between the caller and the helper jobs it enqueues. Helpers may
  // still be sitting in the queue when the loop completes and the caller
  // returns (destroying `fn`); they only read `next` — already >= n by then —
  // and exit without touching the function pointer.
  struct State {
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    std::mutex mu;
    std::condition_variable cv;
    std::exception_ptr error;  // first failure, guarded by mu
  };
  auto state = std::make_shared<State>();
  const std::function<void(int)>* body = &fn;
  pfor_calls_.inc();

  // `indices` is the inert-capable counter the draining thread attributes its
  // indices to — workers and the caller run the same loop, split only here.
  auto drain = [state, body, n](const obs::Counter& indices) {
    for (;;) {
      const int i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      indices.inc();
      try {
        (*body)(i);
      } catch (...) {
        std::lock_guard lk(state->mu);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
        std::lock_guard lk(state->mu);
        state->cv.notify_all();
      }
    }
  };

  const int helpers = std::min(num_threads(), n - 1);
  for (int h = 0; h < helpers; ++h) {
    enqueue([drain, c = pfor_worker_idx_] { drain(c); });
  }
  drain(pfor_caller_idx_);  // caller participates: guarantees progress even on a full pool

  std::unique_lock lk(state->mu);
  state->cv.wait(lk, [&] { return state->done.load(std::memory_order_acquire) >= n; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace pipette::engine
