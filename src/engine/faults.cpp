#include "engine/faults.h"

#include <limits>

#include "common/hashing.h"

namespace pipette::engine {

using common::hash_combine;
using common::hash_mix;

const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kNone: return "none";
    case FaultKind::kDeadLink: return "dead_link";
    case FaultKind::kDegradedLink: return "degraded_link";
    case FaultKind::kNanLink: return "nan_link";
    case FaultKind::kNegativeLink: return "negative_link";
    case FaultKind::kPartialCoverage: return "partial_coverage";
    case FaultKind::kDeadNode: return "dead_node";
    case FaultKind::kTransientProfileFailure: return "transient_profile_failure";
    case FaultKind::kStragglerRound: return "straggler_round";
    case FaultKind::kCount: break;
  }
  return "unknown";
}

FaultInjector::FaultInjector(const FaultOptions& opt) : opt_(opt) {
  if (!opt_.enabled) return;
  if (opt_.kind != FaultKind::kNone) {
    kind_ = opt_.kind;
  } else {
    const auto n_kinds = static_cast<std::uint64_t>(FaultKind::kCount) - 1;
    kind_ = static_cast<FaultKind>(1 + hash_mix(opt_.seed) % n_kinds);
  }
  target_a_ = hash_mix(opt_.seed ^ 0xa11ce5ull);
  target_b_ = hash_mix(opt_.seed ^ 0xb0b5ull);
  if (opt_.metrics != nullptr) {
    m_injected_ = opt_.metrics->counter("pipette.faults.injected_readings");
    m_transient_ = opt_.metrics->counter("pipette.faults.transient_failures");
    m_dropped_ = opt_.metrics->counter("pipette.faults.dropped_pairs");
  }
}

std::uint64_t FaultInjector::fingerprint() const {
  // Pure schedule identity: runs that corrupt identically hash identically.
  // The transient-attempt counter is deliberately excluded — the cache only
  // memoizes runs that succeeded, and successful runs under a transient
  // schedule are uncorrupted.
  std::uint64_t h = hash_mix(0xfa017e5ull ^ static_cast<std::uint64_t>(kind_));
  h = hash_combine(h, opt_.seed);
  h = hash_combine(h, static_cast<std::uint64_t>(opt_.transient_failures));
  h = hash_combine(h, opt_.degraded_factor);
  h = hash_combine(h, opt_.partial_drop_frac);
  h = hash_combine(h, opt_.straggler_factor);
  return h;
}

std::pair<int, int> FaultInjector::target_pair(int num_nodes) const {
  if (num_nodes < 2) return {0, 0};
  const int a = static_cast<int>(target_a_ % static_cast<std::uint64_t>(num_nodes));
  const int off = 1 + static_cast<int>(target_b_ % static_cast<std::uint64_t>(num_nodes - 1));
  return {a, (a + off) % num_nodes};
}

void FaultInjector::on_profile_start() {
  if (kind_ != FaultKind::kTransientProfileFailure) return;
  const int attempt = attempts_.fetch_add(1, std::memory_order_relaxed);
  if (attempt < opt_.transient_failures) {
    m_transient_.inc();
    throw cluster::ProfileTransientError("injected transient profiling failure (attempt " +
                                         std::to_string(attempt + 1) + ")");
  }
}

double FaultInjector::corrupt_inter(int num_nodes, int n1, int n2, double measured) {
  switch (kind_) {
    case FaultKind::kDeadLink: {
      const auto [a, b] = target_pair(num_nodes);
      if (n1 == a && n2 == b && a != b) {
        m_injected_.inc();
        return 0.0;
      }
      return measured;
    }
    case FaultKind::kDegradedLink: {
      const auto [a, b] = target_pair(num_nodes);
      if (n1 == a && n2 == b && a != b) {
        m_injected_.inc();
        return measured * opt_.degraded_factor;
      }
      return measured;
    }
    case FaultKind::kNanLink: {
      const auto [a, b] = target_pair(num_nodes);
      if (n1 == a && n2 == b && a != b) {
        m_injected_.inc();
        return std::numeric_limits<double>::quiet_NaN();
      }
      return measured;
    }
    case FaultKind::kNegativeLink: {
      const auto [a, b] = target_pair(num_nodes);
      if (n1 == a && n2 == b && a != b) {
        m_injected_.inc();
        return -measured;
      }
      return measured;
    }
    case FaultKind::kDeadNode: {
      const int dead =
          num_nodes > 0 ? static_cast<int>(target_a_ % static_cast<std::uint64_t>(num_nodes)) : 0;
      if (n1 == dead || n2 == dead) {
        m_injected_.inc();
        return 0.0;
      }
      return measured;
    }
    default:
      return measured;
  }
}

double FaultInjector::corrupt_intra(int /*node*/, int /*a*/, int /*b*/, double measured) {
  // The taxonomy targets the inter-node fabric — that is where real clusters
  // degrade (NICs, switches) and where plans are sensitive. NVLink faults
  // would exercise the same sanitizer tiers with less interesting routing
  // consequences.
  return measured;
}

bool FaultInjector::drop_inter(int num_nodes, int n1, int n2) {
  if (kind_ != FaultKind::kPartialCoverage) return false;
  // Stateless per-pair coin flip: the same (seed, pair) always lands the same
  // way, independent of measurement order or concurrency.
  std::uint64_t h = hash_combine(opt_.seed, static_cast<std::uint64_t>(num_nodes));
  h = hash_combine(h, static_cast<std::uint64_t>(n1));
  h = hash_combine(h, static_cast<std::uint64_t>(n2));
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < opt_.partial_drop_frac) {
    m_dropped_.inc();
    return true;
  }
  return false;
}

double FaultInjector::wall_time_factor() {
  return kind_ == FaultKind::kStragglerRound ? opt_.straggler_factor : 1.0;
}

}  // namespace pipette::engine
