#include "engine/cluster_cache.h"

#include "common/hashing.h"
#include "model/gpt_zoo.h"

namespace pipette::engine {

namespace {

std::uint64_t hash_profile_options(std::uint64_t h, const cluster::ProfileOptions& o) {
  using common::hash_combine;
  h = hash_combine(h, o.message_bytes);
  h = hash_combine(h, static_cast<std::uint64_t>(o.rounds));
  h = hash_combine(h, o.per_measurement_setup_s);
  h = hash_combine(h, o.per_node_init_s);
  h = hash_combine(h, o.noise_sigma);
  h = hash_combine(h, o.seed);
  return h;
}

std::uint64_t hash_memory_options(std::uint64_t h, const estimators::MlpMemoryOptions& o) {
  using common::hash_combine;
  for (const int w : o.hidden) h = hash_combine(h, static_cast<std::uint64_t>(w));
  h = hash_combine(h, static_cast<std::uint64_t>(o.train.iters));
  h = hash_combine(h, static_cast<std::uint64_t>(o.train.batch_size));
  h = hash_combine(h, o.train.lr);
  h = hash_combine(h, o.train.lr_decay);
  h = hash_combine(h, o.train.seed);
  h = hash_combine(h, o.soft_margin);
  h = hash_combine(h, static_cast<std::uint64_t>(o.max_profile_nodes));
  for (const int b : o.profile_global_batches) h = hash_combine(h, static_cast<std::uint64_t>(b));
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.max_tp));
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.max_micro_batch));
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.require_full_rounds));
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.fixed_micro_batch));
  // Plan-axis knobs change the training dataset, and the feature-vector
  // version changes the trained net's very input layout: both must key the
  // cached estimator so feature sets never collide.
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.enable_interleaved));
  for (const int v : o.constraints.virtual_stage_options) {
    h = hash_combine(h, static_cast<std::uint64_t>(v));
  }
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.enable_recompute));
  h = hash_combine(h, static_cast<std::uint64_t>(o.constraints.enable_zero1));
  h = hash_combine(h, static_cast<std::uint64_t>(estimators::MlpMemoryEstimator::kFeatureVersion));
  h = hash_combine(h, o.seed);
  return h;
}

}  // namespace

std::uint64_t ClusterCache::profile_key(const cluster::Topology& topo,
                                        const cluster::ProfileOptions& profile_opt) {
  return hash_profile_options(topo.fingerprint(), profile_opt);
}

std::uint64_t ClusterCache::memory_key(const cluster::ClusterSpec& spec,
                                       const estimators::MlpMemoryOptions& memory_opt) {
  return hash_memory_options(cluster::spec_digest(spec), memory_opt);
}

ClusterCache::Entry ClusterCache::get_or_compute(const cluster::Topology& topo,
                                                 const cluster::ProfileOptions& profile_opt,
                                                 const estimators::MlpMemoryOptions& memory_opt) {
  std::shared_ptr<Cell<cluster::ProfileResult>> profile_cell;
  std::shared_ptr<Cell<estimators::MlpMemoryEstimator>> memory_cell;
  {
    std::lock_guard lk(mu_);
    ++stats_.lookups;
    const auto [pcell, phit] = profiles_.acquire(profile_key(topo, profile_opt), opt_.max_profiles);
    const auto [mcell, mhit] =
        estimators_.acquire(memory_key(topo.spec(), memory_opt), opt_.max_estimators);
    if (phit && mhit) ++stats_.hits;
    profile_cell = pcell;
    memory_cell = mcell;
  }

  Entry entry;
  auto fill_profile = [&] {  // caller holds profile_cell->mu
    if (!profile_cell->value) {
      profile_cell->value = std::make_shared<const cluster::ProfileResult>(
          cluster::profile_network(topo, profile_opt));
      std::lock_guard slk(mu_);
      ++stats_.profiles_run;
    }
    entry.profile = profile_cell->value;
  };
  auto fill_memory = [&] {  // caller holds memory_cell->mu
    if (!memory_cell->value) {
      memory_cell->value = std::make_shared<const estimators::MlpMemoryEstimator>(
          estimators::MlpMemoryEstimator::train_for_cluster(topo, model::gpt_zoo(), memory_opt));
      std::lock_guard slk(mu_);
      ++stats_.trainings_run;
    }
    entry.memory = memory_cell->value;
  };

  // The two artifacts are independent; when another request is already
  // profiling this fabric, do the training half first instead of queueing —
  // concurrent first requests then split the work (max, not sum, latency).
  // At most one cell mutex is held at a time, so the opposite orders cannot
  // deadlock.
  std::unique_lock plk(profile_cell->mu, std::defer_lock);
  if (plk.try_lock()) {
    fill_profile();
    plk.unlock();
    std::lock_guard mlk(memory_cell->mu);
    fill_memory();
  } else {
    {
      std::lock_guard mlk(memory_cell->mu);
      fill_memory();
    }
    std::lock_guard plk2(profile_cell->mu);
    fill_profile();
  }
  return entry;
}

ClusterCacheStats ClusterCache::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

int ClusterCache::cached_profiles() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(profiles_.cells.size());
}

int ClusterCache::cached_estimators() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(estimators_.cells.size());
}

}  // namespace pipette::engine
