#include "engine/cluster_cache.h"

#include "common/hashing.h"
#include "model/gpt_zoo.h"

namespace pipette::engine {

namespace {

std::uint64_t hash_profile_options(std::uint64_t h, const cluster::ProfileOptions& o) {
  using common::hash_combine;
  h = hash_combine(h, o.message_bytes);
  h = hash_combine(h, static_cast<std::uint64_t>(o.rounds));
  h = hash_combine(h, o.per_measurement_setup_s);
  h = hash_combine(h, o.per_node_init_s);
  h = hash_combine(h, o.noise_sigma);
  h = hash_combine(h, o.seed);
  // A fault schedule changes the measured matrix; snapshots taken under
  // different schedules (or none) must not alias. The hook's own fingerprint
  // is hashed, never its address.
  h = hash_combine(h, o.faults != nullptr ? o.faults->fingerprint() : std::uint64_t{0});
  return h;
}

}  // namespace

ClusterCache::ClusterCache(ClusterCacheOptions opt) : opt_(opt) {
  if (opt_.metrics) {
    m_lookups_ = opt_.metrics->counter("engine.cluster_cache.lookups");
    m_hits_ = opt_.metrics->counter("engine.cluster_cache.hits");
    m_profiles_run_ = opt_.metrics->counter("engine.cluster_cache.profiles_run");
    m_trainings_run_ = opt_.metrics->counter("engine.cluster_cache.trainings_run");
    m_compute_created_ = opt_.metrics->counter("engine.cluster_cache.compute_caches_created");
  }
}

std::uint64_t ClusterCache::profile_key(const cluster::Topology& topo,
                                        const cluster::ProfileOptions& profile_opt) {
  return hash_profile_options(topo.fingerprint(), profile_opt);
}

std::uint64_t ClusterCache::memory_key(const cluster::ClusterSpec& spec,
                                       const estimators::MlpMemoryOptions& memory_opt) {
  // The estimator's own training digest: the single source of truth for what
  // a trained artifact depends on (spec clamped to the profiled sub-cluster,
  // every training option, the feature version).
  return estimators::MlpMemoryEstimator::training_digest(spec, memory_opt);
}

std::uint64_t ClusterCache::compute_key(const cluster::ClusterSpec& spec,
                                        const estimators::ComputeProfileOptions& compute_opt) {
  return estimators::compute_context_digest(spec, compute_opt);
}

ClusterCache::Entry ClusterCache::get_or_compute(
    const cluster::Topology& topo, const cluster::ProfileOptions& profile_opt,
    const estimators::MlpMemoryOptions& memory_opt,
    const estimators::ComputeProfileOptions& compute_opt) {
  std::shared_ptr<Cell<cluster::ProfileResult>> profile_cell;
  std::shared_ptr<Cell<estimators::MlpMemoryEstimator>> memory_cell;
  Entry entry;
  {
    std::lock_guard lk(mu_);
    ++stats_.lookups;
    m_lookups_.inc();
    const auto [pcell, phit] = profiles_.acquire(profile_key(topo, profile_opt), opt_.max_profiles);
    const auto [mcell, mhit] =
        estimators_.acquire(memory_key(topo.spec(), memory_opt), opt_.max_estimators);
    if (phit && mhit) {
      ++stats_.hits;
      m_hits_.inc();
    }
    entry.profile_was_cached = phit;
    entry.memory_was_cached = mhit;
    profile_cell = pcell;
    memory_cell = mcell;
    // The shape cache starts empty and fills lazily inside requests, so it
    // is minted right here under the cache mutex.
    auto& ccache = compute_[compute_key(topo.spec(), compute_opt)];
    entry.compute_was_cached = static_cast<bool>(ccache);
    if (!ccache) {
      ccache = std::make_shared<estimators::ComputeProfileCache>(
          compute_key(topo.spec(), compute_opt));
      ++stats_.compute_caches_created;
      m_compute_created_.inc();
      compute_order_.push_back(compute_key(topo.spec(), compute_opt));
      while (static_cast<int>(compute_.size()) > opt_.max_compute_caches &&
             compute_order_.front() != compute_key(topo.spec(), compute_opt)) {
        compute_.erase(compute_order_.front());
        compute_order_.pop_front();
      }
    }
    entry.compute = ccache;
  }

  auto fill_profile = [&] {  // caller holds profile_cell->mu
    if (!profile_cell->value) {
      profile_cell->value = std::make_shared<const cluster::ProfileResult>(
          cluster::profile_network(topo, profile_opt));
      m_profiles_run_.inc();
      std::lock_guard slk(mu_);
      ++stats_.profiles_run;
    }
    entry.profile = profile_cell->value;
  };
  auto fill_memory = [&] {  // caller holds memory_cell->mu
    if (!memory_cell->value) {
      memory_cell->value = std::make_shared<const estimators::MlpMemoryEstimator>(
          estimators::MlpMemoryEstimator::train_for_cluster(topo, model::gpt_zoo(), memory_opt));
      m_trainings_run_.inc();
      std::lock_guard slk(mu_);
      ++stats_.trainings_run;
    }
    entry.memory = memory_cell->value;
  };

  // The two artifacts are independent; when another request is already
  // profiling this fabric, do the training half first instead of queueing —
  // concurrent first requests then split the work (max, not sum, latency).
  // At most one cell mutex is held at a time, so the opposite orders cannot
  // deadlock.
  std::unique_lock plk(profile_cell->mu, std::defer_lock);
  if (plk.try_lock()) {
    fill_profile();
    plk.unlock();
    std::lock_guard mlk(memory_cell->mu);
    fill_memory();
  } else {
    {
      std::lock_guard mlk(memory_cell->mu);
      fill_memory();
    }
    std::lock_guard plk2(profile_cell->mu);
    fill_profile();
  }
  return entry;
}

ClusterCacheStats ClusterCache::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

int ClusterCache::cached_profiles() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(profiles_.cells.size());
}

int ClusterCache::cached_estimators() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(estimators_.cells.size());
}

int ClusterCache::cached_compute_caches() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(compute_.size());
}

}  // namespace pipette::engine
