#include "engine/cluster_cache.h"

#include <utility>
#include <vector>

#include "common/hashing.h"
#include "model/gpt_zoo.h"

namespace pipette::engine {

namespace {

std::uint64_t hash_profile_options(std::uint64_t h, const cluster::ProfileOptions& o) {
  using common::hash_combine;
  h = hash_combine(h, o.message_bytes);
  h = hash_combine(h, static_cast<std::uint64_t>(o.rounds));
  h = hash_combine(h, o.per_measurement_setup_s);
  h = hash_combine(h, o.per_node_init_s);
  h = hash_combine(h, o.noise_sigma);
  h = hash_combine(h, o.seed);
  // A fault schedule changes the measured matrix; snapshots taken under
  // different schedules (or none) must not alias. The hook's own fingerprint
  // is hashed, never its address.
  h = hash_combine(h, o.faults != nullptr ? o.faults->fingerprint() : std::uint64_t{0});
  return h;
}

}  // namespace

ClusterCache::ClusterCache(ClusterCacheOptions opt) : opt_(std::move(opt)) {
  if (opt_.metrics) {
    m_lookups_ = opt_.metrics->counter("engine.cluster_cache.lookups");
    m_hits_ = opt_.metrics->counter("engine.cluster_cache.hits");
    m_profiles_run_ = opt_.metrics->counter("engine.cluster_cache.profiles_run");
    m_trainings_run_ = opt_.metrics->counter("engine.cluster_cache.trainings_run");
    m_compute_created_ = opt_.metrics->counter("engine.cluster_cache.compute_caches_created");
    m_evictions_ = opt_.metrics->counter("engine.cluster_cache.evictions");
    m_records_loaded_ = opt_.metrics->counter("pipette.persist.records_loaded");
    m_records_skipped_ = opt_.metrics->counter("pipette.persist.records_skipped");
  }
  if (!opt_.snapshot_dir.empty()) {
    persist::PersisterOptions popt;
    popt.dir = opt_.snapshot_dir;
    popt.write_behind = opt_.persist_write_behind;
    popt.retries = opt_.persist_retries;
    popt.backoff_s = opt_.persist_backoff_s;
    popt.seed = opt_.persist_seed;
    popt.write_delay_s = opt_.persist_write_delay_s;
    popt.metrics = opt_.metrics;
    persister_ = std::make_unique<persist::Persister>(std::move(popt));
  }
}

ClusterCache::~ClusterCache() {
  // Final flush so compute-shape caches (which fill lazily and are only
  // snapshotted here and in flush()) survive a clean shutdown. The persister
  // member's own destructor then drains any remaining queue.
  flush();
}

std::uint64_t ClusterCache::profile_key(const cluster::Topology& topo,
                                        const cluster::ProfileOptions& profile_opt) {
  return hash_profile_options(topo.fingerprint(), profile_opt);
}

std::uint64_t ClusterCache::memory_key(const cluster::ClusterSpec& spec,
                                       const estimators::MlpMemoryOptions& memory_opt) {
  // The estimator's own training digest: the single source of truth for what
  // a trained artifact depends on (spec clamped to the profiled sub-cluster,
  // every training option, the feature version).
  return estimators::MlpMemoryEstimator::training_digest(spec, memory_opt);
}

std::uint64_t ClusterCache::compute_key(const cluster::ClusterSpec& spec,
                                        const estimators::ComputeProfileOptions& compute_opt) {
  return estimators::compute_context_digest(spec, compute_opt);
}

void ClusterCache::erase_compute_locked(std::uint64_t key) {
  compute_.erase(key);
  compute_last_used_.erase(key);
  for (auto it = compute_order_.begin(); it != compute_order_.end(); ++it) {
    if (*it == key) {
      compute_order_.erase(it);
      break;
    }
  }
}

void ClusterCache::enforce_total_cap_locked(std::uint64_t protect_seq, int* evicted) {
  const auto total = [this] {
    return static_cast<int>(profiles_.cells.size() + estimators_.cells.size() + compute_.size());
  };
  while (total() > opt_.max_entries) {
    const auto p = profiles_.lru_before(protect_seq);
    const auto m = estimators_.lru_before(protect_seq);
    std::optional<std::pair<std::uint64_t, std::uint64_t>> c;
    for (const auto& [key, seq] : compute_last_used_) {
      if (seq < protect_seq && (!c || seq < c->second)) c = {{key, seq}};
    }
    int which = -1;
    std::uint64_t best = 0;
    if (p && (which < 0 || p->second < best)) which = 0, best = p->second;
    if (m && (which < 0 || m->second < best)) which = 1, best = m->second;
    if (c && (which < 0 || c->second < best)) which = 2, best = c->second;
    if (which < 0) break;  // only this lookup's own entries remain — never evict those
    if (which == 0) {
      profiles_.erase(p->first);
    } else if (which == 1) {
      estimators_.erase(m->first);
    } else {
      erase_compute_locked(c->first);
    }
    ++*evicted;
  }
}

ClusterCache::Entry ClusterCache::get_or_compute(
    const cluster::Topology& topo, const cluster::ProfileOptions& profile_opt,
    const estimators::MlpMemoryOptions& memory_opt,
    const estimators::ComputeProfileOptions& compute_opt) {
  const std::uint64_t pkey = profile_key(topo, profile_opt);
  const std::uint64_t mkey = memory_key(topo.spec(), memory_opt);
  const std::uint64_t ckey = compute_key(topo.spec(), compute_opt);
  std::shared_ptr<Cell<cluster::ProfileResult>> profile_cell;
  std::shared_ptr<Cell<estimators::MlpMemoryEstimator>> memory_cell;
  Entry entry;
  {
    std::lock_guard lk(mu_);
    ++stats_.lookups;
    m_lookups_.inc();
    int evicted = 0;
    const std::uint64_t seq = ++seq_;  // one recency stamp per lookup
    const auto [pcell, phit] = profiles_.acquire(pkey, opt_.max_profiles, seq, &evicted);
    const auto [mcell, mhit] = estimators_.acquire(mkey, opt_.max_estimators, seq, &evicted);
    if (phit && mhit) {
      ++stats_.hits;
      m_hits_.inc();
    }
    entry.profile_was_cached = phit;
    entry.memory_was_cached = mhit;
    profile_cell = pcell;
    memory_cell = mcell;
    // The shape cache starts empty and fills lazily inside requests, so it
    // is minted right here under the cache mutex.
    auto& slot = compute_[ckey];
    entry.compute_was_cached = static_cast<bool>(slot.cache);
    if (!slot.cache) {
      slot.cache = std::make_shared<estimators::ComputeProfileCache>(ckey);
      ++stats_.compute_caches_created;
      m_compute_created_.inc();
      compute_order_.push_back(ckey);
      while (static_cast<int>(compute_.size()) > opt_.max_compute_caches &&
             compute_order_.front() != ckey) {
        erase_compute_locked(compute_order_.front());
        ++evicted;
      }
    }
    entry.compute = slot.cache;
    entry.compute_from_disk = slot.from_disk;
    compute_last_used_[ckey] = seq;
    enforce_total_cap_locked(seq, &evicted);
    stats_.evictions += evicted;
    if (evicted > 0) m_evictions_.add(evicted);
  }

  auto fill_profile = [&] {  // caller holds profile_cell->mu
    if (!profile_cell->value) {
      profile_cell->value = std::make_shared<const cluster::ProfileResult>(
          cluster::profile_network(topo, profile_opt));
      m_profiles_run_.inc();
      if (persister_) persister_->enqueue_profile(pkey, profile_cell->value);
      std::lock_guard slk(mu_);
      ++stats_.profiles_run;
    }
    entry.profile = profile_cell->value;
    entry.profile_from_disk = profile_cell->from_disk;
  };
  auto fill_memory = [&] {  // caller holds memory_cell->mu
    if (!memory_cell->value) {
      memory_cell->value = std::make_shared<const estimators::MlpMemoryEstimator>(
          estimators::MlpMemoryEstimator::train_for_cluster(topo, model::gpt_zoo(), memory_opt));
      m_trainings_run_.inc();
      if (persister_) persister_->enqueue_memory(mkey, memory_cell->value);
      std::lock_guard slk(mu_);
      ++stats_.trainings_run;
    }
    entry.memory = memory_cell->value;
    entry.memory_from_disk = memory_cell->from_disk;
  };

  // The two artifacts are independent; when another request is already
  // profiling this fabric, do the training half first instead of queueing —
  // concurrent first requests then split the work (max, not sum, latency).
  // At most one cell mutex is held at a time, so the opposite orders cannot
  // deadlock.
  std::unique_lock plk(profile_cell->mu, std::defer_lock);
  if (plk.try_lock()) {
    fill_profile();
    plk.unlock();
    std::lock_guard mlk(memory_cell->mu);
    fill_memory();
  } else {
    {
      std::lock_guard mlk(memory_cell->mu);
      fill_memory();
    }
    std::lock_guard plk2(profile_cell->mu);
    fill_profile();
  }
  return entry;
}

persist::LoadReport ClusterCache::load() { return load(opt_.snapshot_dir); }

persist::LoadReport ClusterCache::load(const std::string& dir) {
  if (dir.empty()) return {};
  persist::LoadSinks sinks;
  // Lock order discipline: the sinks take mu_ to place the cell, release it,
  // then take the cell mutex to install the value — the same mu_-before-cell
  // never-nested order get_or_compute uses, so a load racing live requests
  // cannot deadlock. A cell that already has a value (a request beat the
  // loader to it) keeps the live artifact.
  sinks.profile = [this](std::uint64_t key, std::shared_ptr<const cluster::ProfileResult> p) {
    std::shared_ptr<Cell<cluster::ProfileResult>> cell;
    {
      std::lock_guard lk(mu_);
      int evicted = 0;
      const std::uint64_t seq = ++seq_;
      cell = profiles_.acquire(key, opt_.max_profiles, seq, &evicted).first;
      enforce_total_cap_locked(seq, &evicted);
      stats_.evictions += evicted;
      if (evicted > 0) m_evictions_.add(evicted);
    }
    std::lock_guard clk(cell->mu);
    if (!cell->value) {
      cell->value = std::move(p);
      cell->from_disk = true;
    }
  };
  sinks.memory = [this](std::uint64_t key,
                        std::shared_ptr<const estimators::MlpMemoryEstimator> est) {
    std::shared_ptr<Cell<estimators::MlpMemoryEstimator>> cell;
    {
      std::lock_guard lk(mu_);
      int evicted = 0;
      const std::uint64_t seq = ++seq_;
      cell = estimators_.acquire(key, opt_.max_estimators, seq, &evicted).first;
      enforce_total_cap_locked(seq, &evicted);
      stats_.evictions += evicted;
      if (evicted > 0) m_evictions_.add(evicted);
    }
    std::lock_guard clk(cell->mu);
    if (!cell->value) {
      cell->value = std::move(est);
      cell->from_disk = true;
    }
  };
  sinks.compute = [this](std::uint64_t key, std::shared_ptr<estimators::ComputeProfileCache> c) {
    std::lock_guard lk(mu_);
    auto& slot = compute_[key];
    if (slot.cache) return;  // a live cache (already filling) wins the tie
    slot.cache = std::move(c);
    slot.from_disk = true;
    compute_order_.push_back(key);
    int evicted = 0;
    while (static_cast<int>(compute_.size()) > opt_.max_compute_caches &&
           compute_order_.front() != key) {
      erase_compute_locked(compute_order_.front());
      ++evicted;
    }
    const std::uint64_t seq = ++seq_;
    compute_last_used_[key] = seq;
    enforce_total_cap_locked(seq, &evicted);
    stats_.evictions += evicted;
    if (evicted > 0) m_evictions_.add(evicted);
  };
  persist::LoadReport report = persist::load_directory(dir, sinks);
  m_records_loaded_.add(report.loaded());
  m_records_skipped_.add(report.skipped_count());
  return report;
}

void ClusterCache::flush() {
  if (!persister_) return;
  // Compute-shape caches fill lazily on the request path, so they are
  // snapshotted here (and at shutdown) rather than on creation. Profiles and
  // estimators were enqueued the moment they were computed.
  std::vector<std::pair<std::uint64_t, std::shared_ptr<const estimators::ComputeProfileCache>>>
      caches;
  {
    std::lock_guard lk(mu_);
    caches.reserve(compute_.size());
    for (const auto& [key, slot] : compute_) {
      if (slot.cache) caches.emplace_back(key, slot.cache);
    }
  }
  for (auto& [key, cache] : caches) {
    if (!cache->snapshot().empty()) persister_->enqueue_compute(key, cache);
  }
  persister_->flush();
}

ClusterCacheStats ClusterCache::stats() const {
  std::lock_guard lk(mu_);
  return stats_;
}

int ClusterCache::cached_profiles() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(profiles_.cells.size());
}

int ClusterCache::cached_estimators() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(estimators_.cells.size());
}

int ClusterCache::cached_compute_caches() const {
  std::lock_guard lk(mu_);
  return static_cast<int>(compute_.size());
}

}  // namespace pipette::engine
