// Deterministic fault injection for chaos testing the configure pipeline.
//
// FaultInjector implements cluster::ProfileFaultHook: wired into
// ProfileOptions::faults (ConfigService does this when FaultOptions::enabled)
// it imposes one scheduled fault on every profiling run — which fault, and
// which link/node it hits, is a pure function of the seed. The same seed
// therefore reproduces the same degraded snapshot, the same repairs, and the
// same recommended plan on every machine and at every thread count, which is
// what makes a chaos sweep a regression suite rather than a flake generator.
//
// The taxonomy (one kind per schedule; the chaos suite sweeps kinds × seeds):
//
//   kDeadLink                one ordered node pair reads ~0 (dead fabric link)
//   kDegradedLink            one node pair reads truth × degraded_factor
//   kNanLink                 one node pair reports NaN (broken benchmark)
//   kNegativeLink            one node pair reports a negative bandwidth
//   kPartialCoverage         a random subset of node pairs is never measured
//   kDeadNode                every link touching one node is dead (node down)
//   kTransientProfileFailure the first N runs throw ProfileTransientError
//   kStragglerRound          the run succeeds but takes straggler_factor longer
//
// The injector is shared by all requests of a service and must be callable
// concurrently: all schedule state is immutable after construction except the
// transient-failure attempt counter, which is atomic.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>

#include "cluster/profiler.h"
#include "obs/registry.h"

namespace pipette::engine {

enum class FaultKind {
  kNone = 0,
  kDeadLink,
  kDegradedLink,
  kNanLink,
  kNegativeLink,
  kPartialCoverage,
  kDeadNode,
  kTransientProfileFailure,
  kStragglerRound,
  kCount,
};

const char* to_string(FaultKind k);

struct FaultOptions {
  bool enabled = false;
  /// Chooses the fault target (and the kind, when kind == kNone).
  std::uint64_t seed = 1;
  /// kNone derives the kind from the seed; any other value pins it.
  FaultKind kind = FaultKind::kNone;
  /// kTransientProfileFailure: runs that throw before one succeeds.
  int transient_failures = 2;
  /// kDegradedLink: measured = truth * degraded_factor.
  double degraded_factor = 1e-4;
  /// kPartialCoverage: probability a given ordered node pair is unmeasured.
  double partial_drop_frac = 0.25;
  /// kStragglerRound: wall-time multiplier.
  double straggler_factor = 8.0;
  /// Optional pipette.faults.* counters.
  obs::Registry* metrics = nullptr;
};

class FaultInjector final : public cluster::ProfileFaultHook {
 public:
  explicit FaultInjector(const FaultOptions& opt);

  /// The schedule actually in force (resolved from the seed when
  /// opt.kind == kNone).
  FaultKind kind() const { return kind_; }
  /// Node pair targeted by the link faults (node index and the seed-derived
  /// peer offset; resolved against the topology size at measurement time).
  std::uint64_t target_a() const { return target_a_; }
  std::uint64_t target_b() const { return target_b_; }
  /// Transient-failure runs injected so far (attempts past the schedule's
  /// budget succeed and do not count).
  int transient_fired() const {
    return std::min(attempts_.load(std::memory_order_relaxed), opt_.transient_failures);
  }

  // cluster::ProfileFaultHook
  std::uint64_t fingerprint() const override;
  void on_profile_start() override;
  double corrupt_inter(int num_nodes, int n1, int n2, double measured) override;
  double corrupt_intra(int node, int a, int b, double measured) override;
  bool drop_inter(int num_nodes, int n1, int n2) override;
  double wall_time_factor() override;

 private:
  /// The targeted ordered node pair, resolved against this topology's size.
  std::pair<int, int> target_pair(int num_nodes) const;

  FaultOptions opt_;
  FaultKind kind_ = FaultKind::kNone;
  std::uint64_t target_a_ = 0;  ///< seed-derived; taken modulo num_nodes
  std::uint64_t target_b_ = 0;  ///< seed-derived peer offset in [1, num_nodes)
  std::atomic<int> attempts_{0};
  obs::Counter m_injected_;
  obs::Counter m_transient_;
  obs::Counter m_dropped_;
};

}  // namespace pipette::engine
