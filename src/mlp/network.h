// Fully-connected ReLU network with an explicit loss-and-gradient interface
// (so tests can finite-difference check the backward pass) and an Adam
// optimizer. This is the function approximator behind the paper's memory
// estimator: "five layers with 200 hidden sizes, trained for 50,000
// iterations" (Eq. 7, §VI).
#pragma once

#include <cstdint>
#include <vector>

#include "mlp/matrix.h"

namespace pipette::mlp {

struct AdamOptions {
  double lr = 1e-3;
  double beta1 = 0.9;
  double beta2 = 0.999;
  double eps = 1e-8;
};

class Network {
 public:
  /// `layer_sizes` is {input, hidden..., output}; hidden layers use ReLU, the
  /// output layer is linear. Weights are He-initialized from `seed`.
  Network(std::vector<int> layer_sizes, std::uint64_t seed);

  int input_dim() const { return sizes_.front(); }
  int output_dim() const { return sizes_.back(); }
  /// Full {input, hidden..., output} architecture — what a serialized network
  /// must be reconstructed with before set_parameters() restores the weights.
  const std::vector<int>& layer_sizes() const { return sizes_; }
  /// Total parameter count (weights + biases), the exact length parameters()
  /// returns and set_parameters() expects.
  std::size_t num_parameters() const;

  /// Batched forward: X is (n x input_dim), returns (n x output_dim).
  Matrix forward(const Matrix& x) const;

  /// Mean-squared-error loss over the batch and its gradient w.r.t. all
  /// parameters (stored internally for the next `adam_step`). Returns loss.
  double loss_and_grad(const Matrix& x, const Matrix& y_target);

  /// Applies one Adam update using the gradients from the last
  /// `loss_and_grad` call.
  void adam_step(const AdamOptions& opt);

  /// Flat read/write access to all parameters (for the gradient-check test).
  std::vector<double> parameters() const;
  void set_parameters(const std::vector<double>& flat);
  /// Flat view of the last computed gradients, same order as parameters().
  std::vector<double> gradients() const;

 private:
  struct Layer {
    Matrix w;        // (out x in)
    std::vector<double> b;
    Matrix gw;       // gradient accumulators
    std::vector<double> gb;
    Matrix mw, vw;   // Adam moments
    std::vector<double> mb, vb;
  };

  std::vector<int> sizes_;
  std::vector<Layer> layers_;
  std::int64_t adam_t_ = 0;
};

}  // namespace pipette::mlp
