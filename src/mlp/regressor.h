// Regression convenience wrapper around Network: feature/target
// standardization, minibatch Adam training, and MAPE reporting. The memory
// estimator feeds it log-transformed features so that the multiplicative
// structure of memory consumption becomes additive and extrapolates to
// cluster sizes outside the training range (paper: train on <= 32 GPUs,
// validate up to 128).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mlp/network.h"

namespace pipette::mlp {

struct TrainOptions {
  int iters = 50000;      ///< paper default
  int batch_size = 32;
  double lr = 1e-3;
  double lr_decay = 0.9997;  ///< multiplicative per-100-iteration decay
  std::uint64_t seed = 5;
};

struct TrainReport {
  double final_mse = 0.0;     ///< on standardized targets
  double train_mape = 0.0;    ///< percent, on de-standardized predictions
  int iters_run = 0;
};

/// Per-column affine standardizer (x - mean) / std with std floored at 1e-12.
class Standardizer {
 public:
  void fit(const Matrix& x);
  /// Reinstates a previously fitted state (snapshot restore). `mean` and
  /// `std` must be equal-length; entries of `std` must be positive.
  void restore(std::vector<double> mean, std::vector<double> std);
  Matrix transform(const Matrix& x) const;
  std::vector<double> transform_row(std::span<const double> x) const;
  int dim() const { return static_cast<int>(mean_.size()); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& std() const { return std_; }

 private:
  std::vector<double> mean_, std_;
};

class Regressor {
 public:
  /// `hidden` lists hidden layer widths, e.g. {200,200,200,200} for the
  /// paper's five-layer net (4 hidden + 1 output).
  Regressor(int input_dim, std::vector<int> hidden, std::uint64_t seed);

  /// Trains on rows of `x` against `y`; standardization is fit here.
  TrainReport fit(const Matrix& x, const std::vector<double>& y, const TrainOptions& opt);

  /// Predicts the (de-standardized) target for one feature row.
  double predict(std::span<const double> x) const;

  // Snapshot surface (persist/codecs.{h,cpp}): everything a trained regressor
  // is, and a factory that reinstates it bit-exactly. restore() validates the
  // parameter count against the architecture and throws std::invalid_argument
  // on any mismatch — a corrupted snapshot must never produce a half-wired
  // network that predicts garbage.
  const Network& network() const { return net_; }
  const Standardizer& standardizer() const { return feat_std_; }
  double y_mean() const { return y_mean_; }
  double y_std() const { return y_std_; }
  bool fitted() const { return fitted_; }
  static Regressor restore(const std::vector<int>& layer_sizes,
                           const std::vector<double>& parameters,
                           std::vector<double> feat_mean, std::vector<double> feat_std,
                           double y_mean, double y_std);

 private:
  Network net_;
  Standardizer feat_std_;
  double y_mean_ = 0.0, y_std_ = 1.0;
  bool fitted_ = false;
};

}  // namespace pipette::mlp
