#include "mlp/network.h"

#include <cmath>

#include "common/rng.h"

namespace pipette::mlp {

using common::Rng;

Network::Network(std::vector<int> layer_sizes, std::uint64_t seed) : sizes_(std::move(layer_sizes)) {
  Rng rng(seed);
  layers_.reserve(sizes_.size() - 1);
  for (std::size_t l = 0; l + 1 < sizes_.size(); ++l) {
    const int in = sizes_[l], out = sizes_[l + 1];
    Layer layer;
    layer.w = Matrix(out, in);
    const double scale = std::sqrt(2.0 / in);  // He init for ReLU
    for (int r = 0; r < out; ++r) {
      for (int c = 0; c < in; ++c) layer.w(r, c) = rng.normal(0.0, scale);
    }
    layer.b.assign(static_cast<std::size_t>(out), 0.0);
    layer.gw = Matrix(out, in);
    layer.gb.assign(static_cast<std::size_t>(out), 0.0);
    layer.mw = Matrix(out, in);
    layer.vw = Matrix(out, in);
    layer.mb.assign(static_cast<std::size_t>(out), 0.0);
    layer.vb.assign(static_cast<std::size_t>(out), 0.0);
    layers_.push_back(std::move(layer));
  }
}

Matrix Network::forward(const Matrix& x) const {
  Matrix a = x;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = matmul_bt(a, layers_[l].w);  // (n x out)
    for (int i = 0; i < z.rows(); ++i) {
      for (int j = 0; j < z.cols(); ++j) {
        z(i, j) += layers_[l].b[static_cast<std::size_t>(j)];
        if (l + 1 < layers_.size() && z(i, j) < 0.0) z(i, j) = 0.0;  // ReLU on hidden
      }
    }
    a = std::move(z);
  }
  return a;
}

double Network::loss_and_grad(const Matrix& x, const Matrix& y_target) {
  const int n = x.rows();
  // Forward, keeping post-activation values for the backward pass.
  std::vector<Matrix> acts;
  acts.reserve(layers_.size() + 1);
  acts.push_back(x);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    Matrix z = matmul_bt(acts.back(), layers_[l].w);
    for (int i = 0; i < z.rows(); ++i) {
      for (int j = 0; j < z.cols(); ++j) {
        z(i, j) += layers_[l].b[static_cast<std::size_t>(j)];
        if (l + 1 < layers_.size() && z(i, j) < 0.0) z(i, j) = 0.0;
      }
    }
    acts.push_back(std::move(z));
  }

  // MSE loss and dL/d(output).
  const Matrix& out = acts.back();
  double loss = 0.0;
  Matrix delta(out.rows(), out.cols());
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) {
      const double diff = out(i, j) - y_target(i, j);
      loss += diff * diff;
      delta(i, j) = 2.0 * diff / n;
    }
  }
  loss /= n;

  // Backward.
  for (int l = static_cast<int>(layers_.size()) - 1; l >= 0; --l) {
    Layer& layer = layers_[static_cast<std::size_t>(l)];
    const Matrix& a_in = acts[static_cast<std::size_t>(l)];
    layer.gw = matmul_at(delta, a_in);  // (out x in)
    for (int j = 0; j < static_cast<int>(layer.gb.size()); ++j) {
      double s = 0.0;
      for (int i = 0; i < delta.rows(); ++i) s += delta(i, j);
      layer.gb[static_cast<std::size_t>(j)] = s;
    }
    if (l > 0) {
      Matrix next = matmul(delta, layer.w);  // (n x in)
      // ReLU mask of the producing layer: stored activations are post-ReLU,
      // so a zero activation means the unit was clamped and passes no grad.
      const Matrix& mask = acts[static_cast<std::size_t>(l)];
      for (int i = 0; i < next.rows(); ++i) {
        for (int j = 0; j < next.cols(); ++j) {
          if (mask(i, j) <= 0.0) next(i, j) = 0.0;
        }
      }
      delta = std::move(next);
    }
  }
  return loss;
}

void Network::adam_step(const AdamOptions& opt) {
  ++adam_t_;
  const double bc1 = 1.0 - std::pow(opt.beta1, static_cast<double>(adam_t_));
  const double bc2 = 1.0 - std::pow(opt.beta2, static_cast<double>(adam_t_));
  for (auto& layer : layers_) {
    auto w = layer.w.data();
    auto gw = layer.gw.data();
    auto mw = layer.mw.data();
    auto vw = layer.vw.data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      mw[i] = opt.beta1 * mw[i] + (1.0 - opt.beta1) * gw[i];
      vw[i] = opt.beta2 * vw[i] + (1.0 - opt.beta2) * gw[i] * gw[i];
      w[i] -= opt.lr * (mw[i] / bc1) / (std::sqrt(vw[i] / bc2) + opt.eps);
    }
    for (std::size_t i = 0; i < layer.b.size(); ++i) {
      layer.mb[i] = opt.beta1 * layer.mb[i] + (1.0 - opt.beta1) * layer.gb[i];
      layer.vb[i] = opt.beta2 * layer.vb[i] + (1.0 - opt.beta2) * layer.gb[i] * layer.gb[i];
      layer.b[i] -= opt.lr * (layer.mb[i] / bc1) / (std::sqrt(layer.vb[i] / bc2) + opt.eps);
    }
  }
}

std::size_t Network::num_parameters() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) n += layer.w.data().size() + layer.b.size();
  return n;
}

std::vector<double> Network::parameters() const {
  std::vector<double> flat;
  for (const auto& layer : layers_) {
    flat.insert(flat.end(), layer.w.data().begin(), layer.w.data().end());
    flat.insert(flat.end(), layer.b.begin(), layer.b.end());
  }
  return flat;
}

void Network::set_parameters(const std::vector<double>& flat) {
  std::size_t pos = 0;
  for (auto& layer : layers_) {
    auto w = layer.w.data();
    for (std::size_t i = 0; i < w.size(); ++i) w[i] = flat[pos++];
    for (auto& b : layer.b) b = flat[pos++];
  }
}

std::vector<double> Network::gradients() const {
  std::vector<double> flat;
  for (const auto& layer : layers_) {
    flat.insert(flat.end(), layer.gw.data().begin(), layer.gw.data().end());
    flat.insert(flat.end(), layer.gb.begin(), layer.gb.end());
  }
  return flat;
}

}  // namespace pipette::mlp
