#include "mlp/regressor.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

#include "common/rng.h"
#include "common/stats.h"

namespace pipette::mlp {

using common::Rng;

void Standardizer::fit(const Matrix& x) {
  mean_.assign(static_cast<std::size_t>(x.cols()), 0.0);
  std_.assign(static_cast<std::size_t>(x.cols()), 0.0);
  for (int j = 0; j < x.cols(); ++j) {
    double m = 0.0;
    for (int i = 0; i < x.rows(); ++i) m += x(i, j);
    m /= x.rows();
    double v = 0.0;
    for (int i = 0; i < x.rows(); ++i) v += (x(i, j) - m) * (x(i, j) - m);
    v /= x.rows();
    mean_[static_cast<std::size_t>(j)] = m;
    // A constant column standardizes to zero no matter the divisor, but the
    // divisor still scales *inference-time* values outside the training
    // range: with a 1e-12 floor a feature held fixed during profiling (e.g.
    // a single profiled global batch) turns any other value into a z-score
    // of ~1e12 and saturates the net to 0/inf. Unit scale keeps such columns
    // inert in training and merely mild at inference.
    const double s = std::sqrt(v);
    std_[static_cast<std::size_t>(j)] = s < 1e-9 ? 1.0 : s;
  }
}

Matrix Standardizer::transform(const Matrix& x) const {
  assert(x.cols() == dim());
  Matrix out(x.rows(), x.cols());
  for (int i = 0; i < x.rows(); ++i) {
    for (int j = 0; j < x.cols(); ++j) {
      out(i, j) = (x(i, j) - mean_[static_cast<std::size_t>(j)]) / std_[static_cast<std::size_t>(j)];
    }
  }
  return out;
}

std::vector<double> Standardizer::transform_row(std::span<const double> x) const {
  assert(static_cast<int>(x.size()) == dim());
  std::vector<double> out(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) out[j] = (x[j] - mean_[j]) / std_[j];
  return out;
}

void Standardizer::restore(std::vector<double> mean, std::vector<double> std) {
  if (mean.size() != std.size()) {
    throw std::invalid_argument("Standardizer::restore: mean/std length mismatch");
  }
  for (const double s : std) {
    if (!(s > 0.0)) throw std::invalid_argument("Standardizer::restore: non-positive std");
  }
  mean_ = std::move(mean);
  std_ = std::move(std);
}

Regressor Regressor::restore(const std::vector<int>& layer_sizes,
                             const std::vector<double>& parameters,
                             std::vector<double> feat_mean, std::vector<double> feat_std,
                             double y_mean, double y_std) {
  if (layer_sizes.size() < 2 || layer_sizes.back() != 1) {
    throw std::invalid_argument("Regressor::restore: bad architecture");
  }
  for (const int s : layer_sizes) {
    if (s < 1 || s > 1 << 20) throw std::invalid_argument("Regressor::restore: bad layer size");
  }
  if (static_cast<std::size_t>(layer_sizes.front()) != feat_mean.size()) {
    throw std::invalid_argument("Regressor::restore: standardizer dim != input dim");
  }
  if (!(y_std > 0.0)) throw std::invalid_argument("Regressor::restore: non-positive y_std");
  const std::vector<int> hidden(layer_sizes.begin() + 1, layer_sizes.end() - 1);
  Regressor reg(layer_sizes.front(), hidden, /*seed=*/0);
  if (reg.net_.num_parameters() != parameters.size()) {
    throw std::invalid_argument("Regressor::restore: parameter count mismatch");
  }
  reg.net_.set_parameters(parameters);
  reg.feat_std_.restore(std::move(feat_mean), std::move(feat_std));
  reg.y_mean_ = y_mean;
  reg.y_std_ = y_std;
  reg.fitted_ = true;
  return reg;
}

Regressor::Regressor(int input_dim, std::vector<int> hidden, std::uint64_t seed)
    : net_([&] {
        std::vector<int> sizes;
        sizes.push_back(input_dim);
        sizes.insert(sizes.end(), hidden.begin(), hidden.end());
        sizes.push_back(1);
        return sizes;
      }(),
           seed) {}

TrainReport Regressor::fit(const Matrix& x, const std::vector<double>& y, const TrainOptions& opt) {
  if (x.rows() != static_cast<int>(y.size()) || x.rows() == 0) {
    throw std::invalid_argument("Regressor::fit: bad dataset shape");
  }
  feat_std_.fit(x);
  const Matrix xs = feat_std_.transform(x);

  y_mean_ = common::mean(y);
  double v = 0.0;
  for (double yi : y) v += (yi - y_mean_) * (yi - y_mean_);
  y_std_ = std::max(std::sqrt(v / static_cast<double>(y.size())), 1e-12);

  const int n = x.rows();
  const int bs = std::min(opt.batch_size, n);
  Rng rng(opt.seed);
  AdamOptions adam;
  adam.lr = opt.lr;

  Matrix xb(bs, x.cols());
  Matrix yb(bs, 1);
  double last_loss = 0.0;
  for (int it = 0; it < opt.iters; ++it) {
    for (int i = 0; i < bs; ++i) {
      const int r = rng.uniform_int(0, n - 1);
      for (int j = 0; j < x.cols(); ++j) xb(i, j) = xs(r, j);
      yb(i, 0) = (y[static_cast<std::size_t>(r)] - y_mean_) / y_std_;
    }
    last_loss = net_.loss_and_grad(xb, yb);
    net_.adam_step(adam);
    if ((it + 1) % 100 == 0) adam.lr *= opt.lr_decay;
  }
  fitted_ = true;

  TrainReport rep;
  rep.final_mse = last_loss;
  rep.iters_run = opt.iters;
  std::vector<double> pred(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) pred[static_cast<std::size_t>(i)] = predict(x.row(i));
  rep.train_mape = common::mape_percent(pred, y);
  return rep;
}

double Regressor::predict(std::span<const double> x) const {
  if (!fitted_) throw std::logic_error("Regressor::predict before fit");
  const std::vector<double> xs = feat_std_.transform_row(x);
  Matrix in(1, static_cast<int>(xs.size()));
  for (std::size_t j = 0; j < xs.size(); ++j) in(0, static_cast<int>(j)) = xs[j];
  const Matrix out = net_.forward(in);
  return out(0, 0) * y_std_ + y_mean_;
}

}  // namespace pipette::mlp
