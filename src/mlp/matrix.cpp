#include "mlp/matrix.h"

namespace pipette::mlp {

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

Matrix matmul_bt(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.cols());
  Matrix c(a.rows(), b.rows());
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < b.rows(); ++j) {
      double s = 0.0;
      for (int k = 0; k < a.cols(); ++k) s += a(i, k) * b(j, k);
      c(i, j) = s;
    }
  }
  return c;
}

Matrix matmul_at(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows());
  Matrix c(a.cols(), b.cols());
  for (int k = 0; k < a.rows(); ++k) {
    for (int i = 0; i < a.cols(); ++i) {
      const double aki = a(k, i);
      if (aki == 0.0) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += aki * b(k, j);
    }
  }
  return c;
}

}  // namespace pipette::mlp
