// Row-major dense matrix, just big enough for the paper's 5-layer/200-hidden
// memory-estimator MLP (Eq. 7). No BLAS dependency; the ikj loop below is
// cache-friendly enough for matrices of this size.
#pragma once

#include <cassert>
#include <span>
#include <vector>

namespace pipette::mlp {

class Matrix {
 public:
  Matrix() = default;
  Matrix(int rows, int cols, double fill = 0.0)
      : rows_(rows), cols_(cols), d_(static_cast<std::size_t>(rows) * cols, fill) {}

  int rows() const { return rows_; }
  int cols() const { return cols_; }

  double& operator()(int r, int c) { return d_[static_cast<std::size_t>(r) * cols_ + c]; }
  double operator()(int r, int c) const { return d_[static_cast<std::size_t>(r) * cols_ + c]; }

  std::span<double> row(int r) { return {&d_[static_cast<std::size_t>(r) * cols_], static_cast<std::size_t>(cols_)}; }
  std::span<const double> row(int r) const {
    return {&d_[static_cast<std::size_t>(r) * cols_], static_cast<std::size_t>(cols_)};
  }
  std::span<double> data() { return d_; }
  std::span<const double> data() const { return d_; }

 private:
  int rows_ = 0, cols_ = 0;
  std::vector<double> d_;
};

/// C = A * B. Dimensions must agree.
Matrix matmul(const Matrix& a, const Matrix& b);
/// C = A * B^T (the common shape in the backward pass).
Matrix matmul_bt(const Matrix& a, const Matrix& b);
/// C = A^T * B.
Matrix matmul_at(const Matrix& a, const Matrix& b);

}  // namespace pipette::mlp
