// Simulated network profiling — the substitute for the paper's mpiGraph /
// NCCL-tests runs (Algorithm 1 line 1). Produces a noisy snapshot of the true
// bandwidth matrix and accounts the wall-clock cost of taking it, which feeds
// the "Bandwidth Profiling" row of Table II.
#pragma once

#include <cstdint>

#include "cluster/bandwidth_matrix.h"
#include "cluster/topology.h"

namespace pipette::cluster {

struct ProfileOptions {
  double message_bytes = 1.0 * (1ull << 30);  ///< probe size per measurement
  int rounds = 2;                             ///< repeated probes per ordered pair
  double per_measurement_setup_s = 0.05;      ///< handshake / barrier cost
  double per_node_init_s = 2.0;               ///< communicator bring-up per node
  double noise_sigma = 0.02;                  ///< relative measurement error
  std::uint64_t seed = 1;
};

struct ProfileResult {
  BandwidthMatrix bw;      ///< measured pairwise bandwidths
  double wall_time_s = 0;  ///< simulated cost of the profiling run (Table II)
  int num_measurements = 0;
};

/// Measures every ordered node pair (applied to all GPU pairs across those
/// nodes, as mpiGraph does) and every intra-node GPU pair. Measurement error
/// is multiplicative with the given sigma; rounds are averaged.
ProfileResult profile_network(const Topology& topo, const ProfileOptions& opt);

}  // namespace pipette::cluster
