// Simulated network profiling — the substitute for the paper's mpiGraph /
// NCCL-tests runs (Algorithm 1 line 1). Produces a noisy snapshot of the true
// bandwidth matrix and accounts the wall-clock cost of taking it, which feeds
// the "Bandwidth Profiling" row of Table II.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "cluster/bandwidth_matrix.h"
#include "cluster/sanitizer.h"
#include "cluster/topology.h"

namespace pipette::cluster {

/// Thrown when a profiling run fails for a transient reason (a flapping link,
/// a node that missed the barrier) — the caller may retry; a fresh run can
/// succeed. Anything else escaping profile_network is a real bug.
struct ProfileTransientError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Injection point for scheduled measurement faults. The profiler calls the
/// hook at each measurement site; implementations (engine::FaultInjector)
/// decide purely from their own seed what to corrupt, so a given hook state
/// reproduces the same faulty snapshot every run. A null hook is the
/// fault-free fast path — no virtual calls are made.
class ProfileFaultHook {
 public:
  virtual ~ProfileFaultHook() = default;
  /// Identifies the fault schedule for cache keying: two hooks with the same
  /// fingerprint must corrupt identically. Profile snapshots taken under
  /// different schedules must not alias in ClusterCache.
  virtual std::uint64_t fingerprint() const = 0;
  /// Called once at the start of a run; may throw ProfileTransientError to
  /// simulate a run that dies before producing a matrix.
  virtual void on_profile_start() = 0;
  /// Maps one inter-node measurement (node n1 -> n2 of `num_nodes`) to its
  /// faulty reading. The node count is passed so implementations can resolve
  /// seed-derived targets statelessly — one hook may serve concurrent runs
  /// over different topologies.
  virtual double corrupt_inter(int num_nodes, int n1, int n2, double measured) = 0;
  /// Maps one intra-node measurement (GPUs a -> b of `node`) likewise.
  virtual double corrupt_intra(int node, int a, int b, double measured) = 0;
  /// True when the ordered node pair should not be measured at all (partial
  /// coverage): the block keeps its unmeasured default and is left to the
  /// sanitizer. Dropped pairs consume no rng draws and no wall time.
  virtual bool drop_inter(int num_nodes, int n1, int n2) = 0;
  /// Multiplier on the run's wall time (straggler rounds). 1.0 = healthy.
  virtual double wall_time_factor() = 0;
};

struct ProfileOptions {
  double message_bytes = 1.0 * (1ull << 30);  ///< probe size per measurement
  int rounds = 2;                             ///< repeated probes per ordered pair
  double per_measurement_setup_s = 0.05;      ///< handshake / barrier cost
  double per_node_init_s = 2.0;               ///< communicator bring-up per node
  double noise_sigma = 0.02;                  ///< relative measurement error
  std::uint64_t seed = 1;
  /// Optional fault schedule (not owned; must outlive the call). Hashed into
  /// profile cache keys via fingerprint().
  ProfileFaultHook* faults = nullptr;
};

struct ProfileResult {
  BandwidthMatrix bw;      ///< measured pairwise bandwidths, sanitized
  double wall_time_s = 0;  ///< simulated cost of the profiling run (Table II)
  int num_measurements = 0;
  /// What the sanitizer repaired. clean() on healthy fabrics — the repair
  /// pass never touches a good reading, so fault-free runs are bit-identical
  /// to an unsanitized profile.
  SanitizeReport sanitize;
};

/// Measures every ordered node pair (applied to all GPU pairs across those
/// nodes, as mpiGraph does) and every intra-node GPU pair. Measurement error
/// is multiplicative with the given sigma, clamped to a small positive floor
/// so no noise draw can produce a non-positive bandwidth; rounds are
/// averaged. The result is sanitized before returning: whatever faults the
/// fabric (or the fault hook) imposed, `bw` contains only finite positive
/// entries. May throw ProfileTransientError when a fault hook injects a
/// transient run failure.
ProfileResult profile_network(const Topology& topo, const ProfileOptions& opt);

}  // namespace pipette::cluster
