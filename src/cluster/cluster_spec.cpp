#include "cluster/cluster_spec.h"

#include "common/hashing.h"
#include "common/units.h"

namespace pipette::cluster {

std::uint64_t spec_digest(const ClusterSpec& spec) {
  using common::hash_combine;
  std::uint64_t h = 0x5bec5bec5bec5ull;
  h = common::hash_string(h, spec.name);
  h = hash_combine(h, static_cast<std::uint64_t>(spec.num_nodes));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.gpus_per_node));
  h = hash_combine(h, static_cast<std::uint64_t>(spec.gpu));
  h = hash_combine(h, spec.intra_node.bandwidth_Bps);
  h = hash_combine(h, spec.intra_node.latency_s);
  h = hash_combine(h, spec.inter_node.bandwidth_Bps);
  h = hash_combine(h, spec.inter_node.latency_s);
  h = hash_combine(h, spec.gpu_peak_flops);
  h = hash_combine(h, spec.gpu_memory_bytes);
  h = hash_combine(h, spec.hbm_bandwidth_Bps);
  h = hash_combine(h, spec.cuda_context_bytes);
  h = hash_combine(h, spec.gemm_efficiency_max);
  h = hash_combine(h, spec.gemm_efficiency_knee_flops);
  return h;
}

using common::GBps;
using common::Gbps;
using common::GiB;
using common::TFLOPS;
using common::usec;

ClusterSpec mid_range_cluster(int num_nodes) {
  ClusterSpec s;
  s.name = "mid-range";
  s.num_nodes = num_nodes;
  s.gpus_per_node = 8;
  s.gpu = GpuKind::V100;
  // latency_s is the effective per-message cost: hardware latency plus the
  // protocol ramp small messages pay before attaining peak bandwidth
  // (~12 MB ramp over EDR ~= 1 ms).
  s.intra_node = {GBps(300.0), usec(12.0)};
  s.inter_node = {Gbps(100.0), usec(2200.0)};
  s.gpu_peak_flops = TFLOPS(125.0);  // V100 fp16 tensor core
  s.hbm_bandwidth_Bps = 900e9;
  s.gpu_memory_bytes = 32e9;  // V100-32GB (decimal, as marketed)
  s.cuda_context_bytes = GiB(0.75);
  s.gemm_efficiency_max = 0.52;
  s.gemm_efficiency_knee_flops = 5.0e10;
  return s;
}

ClusterSpec high_end_cluster(int num_nodes) {
  ClusterSpec s;
  s.name = "high-end";
  s.num_nodes = num_nodes;
  s.gpus_per_node = 8;
  s.gpu = GpuKind::A100;
  s.intra_node = {GBps(600.0), usec(10.0)};
  s.inter_node = {Gbps(200.0), usec(1600.0)};  // see mid-range note on ramp
  s.gpu_peak_flops = TFLOPS(312.0);  // A100 fp16 tensor core
  s.hbm_bandwidth_Bps = 2039e9;
  s.gpu_memory_bytes = 80e9;  // A100-80GB (decimal, as marketed)
  s.cuda_context_bytes = GiB(0.95);
  s.gemm_efficiency_max = 0.50;
  s.gemm_efficiency_knee_flops = 12.0e10;
  return s;
}

HeterogeneityOptions HeterogeneityOptions::none() {
  HeterogeneityOptions h;
  h.inter_mean = 1.0;
  h.inter_spread = 0.0;
  h.inter_min = 1.0;
  h.inter_max = 1.0;
  h.slow_pair_prob = 0.0;
  h.asym_sigma = 0.0;
  h.intra_mean = 1.0;
  h.intra_spread = 0.0;
  h.daily_sigma = 0.0;
  h.daily_rho = 0.0;
  return h;
}

}  // namespace pipette::cluster
