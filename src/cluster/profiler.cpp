#include "cluster/profiler.h"

#include <algorithm>

#include "common/rng.h"

namespace pipette::cluster {

using common::Rng;

ProfileResult profile_network(const Topology& topo, const ProfileOptions& opt) {
  ProfileFaultHook* faults = opt.faults;
  if (faults != nullptr) faults->on_profile_start();

  ProfileResult out;
  out.bw = BandwidthMatrix(topo.num_gpus());
  Rng rng(opt.seed);

  const int nn = topo.num_nodes();
  const int gpn = topo.gpus_per_node();
  out.wall_time_s += opt.per_node_init_s * nn;

  // Multiplicative Gaussian noise can in principle draw below -1 and flip a
  // measurement non-positive; a real benchmark never reports <= 0 bytes/s, so
  // clamp each reading at a tiny fraction of truth. At the default sigma the
  // clamp is ~50 standard deviations out — existing noise streams are
  // untouched bit for bit.
  auto noisy = [&](double truth) {
    const double measured = truth * (1.0 + rng.normal(0.0, opt.noise_sigma));
    return std::max(measured, 1e-6 * truth);
  };

  // Inter-node: probe each ordered node pair through its lead GPUs, average
  // `rounds` noisy measurements, and assign the result to every GPU pair that
  // crosses those nodes (node-to-node resolution, like mpiGraph). Pairs the
  // fault hook drops are skipped entirely — no rng draws, no wall time — and
  // their blocks keep the unmeasured default for the sanitizer to repair.
  for (int n1 = 0; n1 < nn; ++n1) {
    for (int n2 = 0; n2 < nn; ++n2) {
      if (n1 == n2) continue;
      if (faults != nullptr && faults->drop_inter(nn, n1, n2)) continue;
      const int g1 = n1 * gpn, g2 = n2 * gpn;
      const double truth = topo.bandwidth(g1, g2);
      double acc = 0.0;
      for (int r = 0; r < opt.rounds; ++r) {
        double measured = noisy(truth);
        if (faults != nullptr) measured = faults->corrupt_inter(nn, n1, n2, measured);
        acc += measured;
        out.wall_time_s += opt.message_bytes / truth + opt.per_measurement_setup_s;
        ++out.num_measurements;
      }
      const double avg = acc / opt.rounds;
      for (int a = 0; a < gpn; ++a) {
        for (int b = 0; b < gpn; ++b) {
          out.bw.set(n1 * gpn + a, n2 * gpn + b, avg);
        }
      }
    }
  }

  // Intra-node: probe each GPU pair in each node. NVLink probes are cheap and
  // run concurrently across nodes, so only one node's worth of wall time is
  // accounted.
  double intra_wall = 0.0;
  for (int n = 0; n < nn; ++n) {
    for (int a = 0; a < gpn; ++a) {
      for (int b = 0; b < gpn; ++b) {
        if (a == b) continue;
        const int g1 = n * gpn + a, g2 = n * gpn + b;
        const double truth = topo.bandwidth(g1, g2);
        double acc = 0.0;
        for (int r = 0; r < opt.rounds; ++r) {
          double measured = noisy(truth);
          if (faults != nullptr) measured = faults->corrupt_intra(n, a, b, measured);
          acc += measured;
          if (n == 0) intra_wall += opt.message_bytes / truth + opt.per_measurement_setup_s;
          ++out.num_measurements;
        }
        out.bw.set(g1, g2, acc / opt.rounds);
      }
    }
  }
  out.wall_time_s += intra_wall;

  if (faults != nullptr) out.wall_time_s *= faults->wall_time_factor();

  // Whatever the fabric or the fault hook did, hand downstream a matrix of
  // finite positive bandwidths. No-op (and no report entries) when clean.
  out.sanitize = sanitize_bandwidth(out.bw, nn, gpn);
  return out;
}

}  // namespace pipette::cluster
