#include "cluster/topology.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/hashing.h"
#include "common/rng.h"

namespace pipette::cluster {

using common::Rng;

Topology::Topology(ClusterSpec spec, HeterogeneityOptions het, std::uint64_t seed)
    : spec_(std::move(spec)), het_(het), seed_(seed) {
  const int nn = spec_.num_nodes;
  const int gpn = spec_.gpus_per_node;
  inter_base_.assign(static_cast<std::size_t>(nn) * nn, 1.0);
  inter_daily_.assign(static_cast<std::size_t>(nn) * nn, 1.0);
  intra_base_.assign(static_cast<std::size_t>(nn) * gpn * gpn, 1.0);

  Rng root(seed_);
  Rng inter_rng = root.fork(1);
  Rng intra_rng = root.fork(2);

  // Inter-node: draw one symmetric base factor per unordered pair, then apply
  // a small directional asymmetry (the paper observes bidirectional
  // bandwidths are "often almost symmetric", which motivates the SA reverse
  // move — we reproduce that structure).
  for (int i = 0; i < nn; ++i) {
    for (int j = i + 1; j < nn; ++j) {
      double f = inter_rng.normal(het_.inter_mean, het_.inter_spread);
      if (inter_rng.bernoulli(het_.slow_pair_prob)) f *= het_.slow_pair_factor;
      f = std::clamp(f, het_.inter_min, het_.inter_max);
      const double fwd = std::clamp(f * (1.0 + inter_rng.normal(0.0, het_.asym_sigma)),
                                    het_.inter_min, het_.inter_max);
      const double bwd = std::clamp(f * (1.0 + inter_rng.normal(0.0, het_.asym_sigma)),
                                    het_.inter_min, het_.inter_max);
      inter_base_[static_cast<std::size_t>(i) * nn + j] = fwd;
      inter_base_[static_cast<std::size_t>(j) * nn + i] = bwd;
    }
  }

  // Intra-node NVLink: nearly homogeneous, symmetric per GPU pair.
  for (int n = 0; n < nn; ++n) {
    for (int a = 0; a < gpn; ++a) {
      for (int b = a + 1; b < gpn; ++b) {
        double f = std::clamp(intra_rng.normal(het_.intra_mean, het_.intra_spread), 0.6, 1.0);
        intra_base_[(static_cast<std::size_t>(n) * gpn + a) * gpn + b] = f;
        intra_base_[(static_cast<std::size_t>(n) * gpn + b) * gpn + a] = f;
      }
    }
  }
}

Topology Topology::homogeneous(ClusterSpec spec) {
  return Topology(std::move(spec), HeterogeneityOptions::none(), /*seed=*/0);
}

double Topology::inter_factor(int n1, int n2) const {
  const std::size_t idx = static_cast<std::size_t>(n1) * spec_.num_nodes + n2;
  return inter_base_[idx] * inter_daily_[idx];
}

double Topology::bandwidth(int g1, int g2) const {
  assert(g1 >= 0 && g1 < num_gpus() && g2 >= 0 && g2 < num_gpus());
  if (g1 == g2) return std::numeric_limits<double>::infinity();
  const int n1 = node_of(g1), n2 = node_of(g2);
  if (n1 == n2) {
    const int gpn = spec_.gpus_per_node;
    const int a = g1 % gpn, b = g2 % gpn;
    return spec_.intra_node.bandwidth_Bps *
           intra_base_[(static_cast<std::size_t>(n1) * gpn + a) * gpn + b];
  }
  return spec_.inter_node.bandwidth_Bps * inter_factor(n1, n2);
}

double Topology::latency(int g1, int g2) const {
  if (g1 == g2) return 0.0;
  return same_node(g1, g2) ? spec_.intra_node.latency_s : spec_.inter_node.latency_s;
}

double Topology::spec_bandwidth(int g1, int g2) const {
  if (g1 == g2) return std::numeric_limits<double>::infinity();
  return same_node(g1, g2) ? spec_.intra_node.bandwidth_Bps : spec_.inter_node.bandwidth_Bps;
}

void Topology::advance_day() {
  ++day_;
  // AR(1) walk on the daily multiplier of every ordered inter-node pair. The
  // innovation stream is keyed by (seed, day, pair) so the whole 40-day trace
  // is reproducible and independent of call patterns.
  Rng day_rng = Rng(seed_).fork(0xda11ull + static_cast<std::uint64_t>(day_));
  const int nn = spec_.num_nodes;
  for (int i = 0; i < nn; ++i) {
    for (int j = 0; j < nn; ++j) {
      if (i == j) continue;
      const std::size_t idx = static_cast<std::size_t>(i) * nn + j;
      const double prev = inter_daily_[idx] - 1.0;
      double next = het_.daily_rho * prev + day_rng.normal(0.0, het_.daily_sigma);
      next = std::clamp(next, -het_.daily_clamp, het_.daily_clamp);
      inter_daily_[idx] = 1.0 + next;
    }
  }
}

BandwidthMatrix Topology::true_matrix() const {
  BandwidthMatrix m(num_gpus());
  for (int g1 = 0; g1 < num_gpus(); ++g1) {
    for (int g2 = 0; g2 < num_gpus(); ++g2) {
      if (g1 != g2) m.set(g1, g2, bandwidth(g1, g2));
    }
  }
  return m;
}

std::uint64_t Topology::fingerprint() const {
  using common::hash_combine;
  // Digest the actual link state, not the construction recipe: sub_cluster()
  // slices factors out of the parent's larger RNG draw, so a sliced 3-node
  // cluster and a directly built one share (spec, het, seed, day) yet attain
  // different bandwidths — only the factor vectors tell them apart.
  std::uint64_t h = hash_combine(0x9172e7b2d4f1ull, spec_digest(spec_));
  for (const double f : inter_base_) h = hash_combine(h, f);
  for (const double f : inter_daily_) h = hash_combine(h, f);
  for (const double f : intra_base_) h = hash_combine(h, f);
  h = hash_combine(h, seed_);
  h = hash_combine(h, static_cast<std::uint64_t>(day_));
  return h;
}

Topology Topology::sub_cluster(int num_nodes) const {
  assert(num_nodes >= 1 && num_nodes <= spec_.num_nodes);
  ClusterSpec sub = spec_;
  sub.num_nodes = num_nodes;
  Topology t(sub, het_, seed_);
  // Copy the first num_nodes x num_nodes block of link factors so the
  // sub-cluster is literally a subset of this cluster's links.
  for (int i = 0; i < num_nodes; ++i) {
    for (int j = 0; j < num_nodes; ++j) {
      t.inter_base_[static_cast<std::size_t>(i) * num_nodes + j] =
          inter_base_[static_cast<std::size_t>(i) * spec_.num_nodes + j];
      t.inter_daily_[static_cast<std::size_t>(i) * num_nodes + j] =
          inter_daily_[static_cast<std::size_t>(i) * spec_.num_nodes + j];
    }
  }
  const int gpn = spec_.gpus_per_node;
  std::copy_n(intra_base_.begin(), static_cast<std::size_t>(num_nodes) * gpn * gpn,
              t.intra_base_.begin());
  t.day_ = day_;
  return t;
}

}  // namespace pipette::cluster
