#include "cluster/sanitizer.h"

#include <algorithm>
#include <cmath>

namespace pipette::cluster {

namespace {

bool healthy(double v) { return std::isfinite(v) && v > 0.0; }

/// Median of a scratch vector (destructive). Returns NaN when empty so the
/// caller falls through to the next donor tier.
double median_of(std::vector<double>& vals) {
  if (vals.empty()) return std::numeric_limits<double>::quiet_NaN();
  const std::size_t mid = vals.size() / 2;
  std::nth_element(vals.begin(), vals.begin() + static_cast<std::ptrdiff_t>(mid), vals.end());
  return vals[mid];
}

}  // namespace

SanitizeReport sanitize_bandwidth(BandwidthMatrix& bw, int num_nodes, int gpus_per_node,
                                  const SanitizeOptions& opt) {
  SanitizeReport rep;
  const int nn = num_nodes;
  const int gpn = gpus_per_node;
  rep.total_readings = nn * (nn - 1) + nn * gpn * (gpn - 1);

  // Pass 1: classify every reading from the *original* matrix. Inter-node
  // readings live at node-pair resolution (the profiler fans one measurement
  // out to the whole GPU block), so the lead-GPU entry stands for the block.
  // Donors are drawn exclusively from this snapshot — a repaired value never
  // donates to a later repair, so repair order cannot change the result.
  std::vector<char> inter_good(static_cast<std::size_t>(nn) * nn, 1);
  auto inter_at = [&](int n1, int n2) { return bw.at(n1 * gpn, n2 * gpn); };
  for (int n1 = 0; n1 < nn; ++n1) {
    for (int n2 = 0; n2 < nn; ++n2) {
      if (n1 == n2) continue;
      inter_good[static_cast<std::size_t>(n1) * nn + n2] = healthy(inter_at(n1, n2)) ? 1 : 0;
    }
  }

  // Pass 2: quarantine nodes whose inter-node readings are (almost) all bad
  // in both directions. Their links get the floor, not an imputed value — a
  // node we cannot reach should look expensive, not average.
  std::vector<char> quarantined(static_cast<std::size_t>(nn), 0);
  if (nn > 1) {
    const int per_node = 2 * (nn - 1);
    for (int n = 0; n < nn; ++n) {
      int bad = 0;
      for (int m = 0; m < nn; ++m) {
        if (m == n) continue;
        bad += inter_good[static_cast<std::size_t>(n) * nn + m] ? 0 : 1;
        bad += inter_good[static_cast<std::size_t>(m) * nn + n] ? 0 : 1;
      }
      if (bad >= opt.quarantine_frac * per_node && bad > 0) {
        quarantined[static_cast<std::size_t>(n)] = 1;
        rep.quarantined_nodes.push_back(n);
      }
    }
  }

  auto classify = [&rep](double v) {
    if (!std::isfinite(v)) {
      ++rep.repaired_nonfinite;
    } else {
      ++rep.repaired_nonpositive;
    }
  };

  // Pass 3a: repair inter-node readings. Donor hierarchy: symmetric block,
  // then the median of healthy readings touching either endpoint, then the
  // global healthy inter-node median, then the floor.
  std::vector<double> global_inter;
  for (int n1 = 0; n1 < nn; ++n1) {
    for (int n2 = 0; n2 < nn; ++n2) {
      if (n1 != n2 && inter_good[static_cast<std::size_t>(n1) * nn + n2]) {
        global_inter.push_back(inter_at(n1, n2));
      }
    }
  }
  const double global_inter_med = median_of(global_inter);
  std::vector<double> scratch;
  for (int n1 = 0; n1 < nn; ++n1) {
    for (int n2 = 0; n2 < nn; ++n2) {
      if (n1 == n2 || inter_good[static_cast<std::size_t>(n1) * nn + n2]) continue;
      classify(inter_at(n1, n2));
      double repl;
      if (quarantined[static_cast<std::size_t>(n1)] || quarantined[static_cast<std::size_t>(n2)]) {
        repl = opt.floor_bw;
        ++rep.imputed_floor;
      } else if (inter_good[static_cast<std::size_t>(n2) * nn + n1]) {
        repl = inter_at(n2, n1);
        ++rep.imputed_symmetric;
      } else {
        scratch.clear();
        for (int m = 0; m < nn; ++m) {
          if (m != n1 && m != n2 && inter_good[static_cast<std::size_t>(n1) * nn + m]) {
            scratch.push_back(inter_at(n1, m));
          }
          if (m != n1 && m != n2 && inter_good[static_cast<std::size_t>(m) * nn + n2]) {
            scratch.push_back(inter_at(m, n2));
          }
        }
        double med = median_of(scratch);
        if (healthy(med)) {
          repl = med;
          ++rep.imputed_neighbor;
        } else if (healthy(global_inter_med)) {
          repl = global_inter_med;
          ++rep.imputed_neighbor;
        } else {
          repl = opt.floor_bw;
          ++rep.imputed_floor;
        }
      }
      for (int a = 0; a < gpn; ++a) {
        for (int b = 0; b < gpn; ++b) {
          bw.set(n1 * gpn + a, n2 * gpn + b, repl);
        }
      }
      rep.repaired_node_pairs.emplace_back(n1, n2);
    }
  }

  // Pass 3b: repair intra-node readings (per ordered GPU pair). Donors:
  // symmetric pair, then the node's healthy intra median, then the global
  // intra median, then the floor. Quarantine does not apply — it is an
  // inter-node reachability statement.
  std::vector<char> intra_good(static_cast<std::size_t>(nn) * gpn * gpn, 1);
  std::vector<double> global_intra;
  auto intra_idx = [&](int n, int a, int b) {
    return (static_cast<std::size_t>(n) * gpn + a) * gpn + b;
  };
  for (int n = 0; n < nn; ++n) {
    for (int a = 0; a < gpn; ++a) {
      for (int b = 0; b < gpn; ++b) {
        if (a == b) continue;
        const double v = bw.at(n * gpn + a, n * gpn + b);
        if (healthy(v)) {
          global_intra.push_back(v);
        } else {
          intra_good[intra_idx(n, a, b)] = 0;
        }
      }
    }
  }
  const double global_intra_med = median_of(global_intra);
  for (int n = 0; n < nn; ++n) {
    bool node_repaired = false;
    for (int a = 0; a < gpn; ++a) {
      for (int b = 0; b < gpn; ++b) {
        if (a == b || intra_good[intra_idx(n, a, b)]) continue;
        classify(bw.at(n * gpn + a, n * gpn + b));
        double repl;
        if (intra_good[intra_idx(n, b, a)]) {
          repl = bw.at(n * gpn + b, n * gpn + a);
          ++rep.imputed_symmetric;
        } else {
          scratch.clear();
          for (int x = 0; x < gpn; ++x) {
            for (int y = 0; y < gpn; ++y) {
              if (x != y && intra_good[intra_idx(n, x, y)]) {
                scratch.push_back(bw.at(n * gpn + x, n * gpn + y));
              }
            }
          }
          double med = median_of(scratch);
          if (healthy(med)) {
            repl = med;
            ++rep.imputed_neighbor;
          } else if (healthy(global_intra_med)) {
            repl = global_intra_med;
            ++rep.imputed_neighbor;
          } else {
            repl = opt.floor_bw;
            ++rep.imputed_floor;
          }
        }
        // The symmetric donor is read back through intra_good, which still
        // reflects the original matrix — but the value itself may have been
        // overwritten only if (b, a) was bad, which intra_good excludes.
        bw.set(n * gpn + a, n * gpn + b, repl);
        node_repaired = true;
      }
    }
    if (node_repaired) rep.repaired_node_pairs.emplace_back(n, n);
  }

  return rep;
}

}  // namespace pipette::cluster
