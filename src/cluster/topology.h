// The simulated physical cluster. This is the ground-truth substrate that
// replaces the paper's real V100/A100 clusters: per-direction node-pair
// attained bandwidths drawn from a seeded heterogeneity model, with AR(1)
// day-to-day drift (Fig. 3). Everything downstream — the discrete-event
// pipeline simulator ("actual" runs) and the profiler ("measured" snapshots) —
// reads link state from here.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/bandwidth_matrix.h"
#include "cluster/cluster_spec.h"

namespace pipette::cluster {

class Topology {
 public:
  /// Builds a cluster whose link factors are fully determined by `seed`.
  Topology(ClusterSpec spec, HeterogeneityOptions het, std::uint64_t seed);

  /// A perfectly homogeneous cluster (attained == spec); used by the latency
  /// model exactness tests where closed forms must match the simulator.
  static Topology homogeneous(ClusterSpec spec);

  const ClusterSpec& spec() const { return spec_; }
  int num_gpus() const { return spec_.num_gpus(); }
  int num_nodes() const { return spec_.num_nodes; }
  int gpus_per_node() const { return spec_.gpus_per_node; }
  int node_of(int gpu) const { return gpu / spec_.gpus_per_node; }
  bool same_node(int g1, int g2) const { return node_of(g1) == node_of(g2); }

  /// Attained bandwidth g1 -> g2 for the current day, bytes/second.
  double bandwidth(int g1, int g2) const;
  /// Per-message latency g1 -> g2, seconds.
  double latency(int g1, int g2) const;
  /// Document-specified bandwidth for the link class of (g1, g2) — what
  /// heterogeneity-unaware tools like AMP assume.
  double spec_bandwidth(int g1, int g2) const;

  /// Advances the AR(1) day state (used to generate the Fig. 3 trace and to
  /// separate the profiling day from the execution day).
  void advance_day();
  int day() const { return day_; }

  /// Dense snapshot of the current-day attained bandwidths.
  BandwidthMatrix true_matrix() const;

  /// Stable 64-bit digest of everything that determines this cluster's
  /// behaviour: the spec plus the attained per-link factors of the current
  /// day (which also distinguishes sub_cluster() slices from directly built
  /// clusters). Two Topology objects with equal fingerprints produce
  /// identical bandwidths, latencies, and sub-clusters — this is what
  /// engine::ClusterCache keys its memoized bandwidth profiles on.
  std::uint64_t fingerprint() const;

  /// Restricts to the first `num_nodes` nodes (same seed-derived link factors)
  /// — how the memory estimator's "profile on up to four nodes" data is made.
  Topology sub_cluster(int num_nodes) const;

 private:
  double inter_factor(int n1, int n2) const;

  ClusterSpec spec_;
  HeterogeneityOptions het_;
  std::uint64_t seed_ = 0;
  int day_ = 0;
  // Base attained fraction per ordered node pair (flattened num_nodes^2) and
  // its current AR(1) daily multiplier.
  std::vector<double> inter_base_;
  std::vector<double> inter_daily_;
  // Attained fraction per intra-node GPU pair, shared across nodes is NOT
  // assumed: indexed [node][local1 * gpn + local2].
  std::vector<double> intra_base_;
};

}  // namespace pipette::cluster
