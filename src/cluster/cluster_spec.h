// Static cluster descriptions (the paper's Table I) plus the heterogeneity
// model that turns document-specified ("spec") link bandwidths into the
// per-pair *attained* bandwidths observed on real fabrics.
#pragma once

#include <cstdint>
#include <string>

namespace pipette::cluster {

/// A class of physical link: the document-specified peak bandwidth and the
/// small fixed software/switch latency per transfer.
struct LinkClass {
  double bandwidth_Bps = 0.0;  ///< spec (document) bandwidth, bytes/second
  double latency_s = 0.0;      ///< per-message latency, seconds
};

enum class GpuKind { V100, A100 };

/// Everything Table I says about a cluster, plus the per-GPU quantities the
/// memory and compute models need.
struct ClusterSpec {
  std::string name;
  int num_nodes = 16;
  int gpus_per_node = 8;
  GpuKind gpu = GpuKind::V100;
  LinkClass intra_node;  ///< NVLink / NVSwitch
  LinkClass inter_node;  ///< Infiniband
  double gpu_peak_flops = 0.0;       ///< fp16 tensor-core peak, FLOP/s
  double gpu_memory_bytes = 0.0;     ///< device memory capacity
  double hbm_bandwidth_Bps = 0.0;    ///< device memory bandwidth
  double cuda_context_bytes = 0.0;   ///< fixed per-process framework residency
  double gemm_efficiency_max = 0.5;  ///< saturating attainable fraction of peak
  /// Per-layer FLOP count at which GEMM efficiency reaches half of its max
  /// (the saturation knee of the efficiency curve; larger GPUs need more work).
  double gemm_efficiency_knee_flops = 0.0;

  int num_gpus() const { return num_nodes * gpus_per_node; }
};

/// Stable 64-bit digest of every ClusterSpec field. Two clusters with equal
/// digests are indistinguishable to anything that reads only the spec — e.g.
/// the MLP memory estimator, whose training data is simulated from the spec
/// alone (engine::ClusterCache keys trained estimators on this).
std::uint64_t spec_digest(const ClusterSpec& spec);

/// 'Mid-range' cluster of Table I: 8x V100 per node, Infiniband EDR 100 Gbps,
/// NVLink 300 GBps. Defaults to the paper's 16 nodes (128 GPUs).
ClusterSpec mid_range_cluster(int num_nodes = 16);

/// 'High-end' cluster of Table I: 8x A100 per node, Infiniband HDR 200 Gbps,
/// NVSwitch 600 GBps.
ClusterSpec high_end_cluster(int num_nodes = 16);

/// How far the attained bandwidth deviates from spec, per link and per day.
/// Defaults are calibrated so the inter-node spread matches the 10-45 %
/// attained-vs-spec variation reported for production Infiniband clusters
/// (paper Fig. 3 and refs [9]-[11]).
struct HeterogeneityOptions {
  double inter_mean = 0.62;        ///< mean attained fraction of spec, inter-node
  double inter_spread = 0.16;      ///< stddev of the attained fraction
  double inter_min = 0.28;         ///< clamp floor
  double inter_max = 0.94;         ///< clamp ceiling
  double slow_pair_prob = 0.12;    ///< probability a node pair is further degraded
  double slow_pair_factor = 0.40;  ///< extra multiplier on degraded pairs
  double asym_sigma = 0.01;        ///< direction asymmetry (paper: nearly symmetric)
  double intra_mean = 0.92;        ///< NVLink attains close to spec
  double intra_spread = 0.02;
  double daily_sigma = 0.025;      ///< day-to-day AR(1) innovation (Fig. 3 drift)
  double daily_rho = 0.8;          ///< AR(1) persistence across days
  double daily_clamp = 0.12;       ///< max relative daily excursion

  /// A fully homogeneous fabric (attained == spec); used by exactness tests.
  static HeterogeneityOptions none();
};

}  // namespace pipette::cluster
