#include "cluster/bandwidth_matrix.h"

#include <algorithm>

namespace pipette::cluster {

BandwidthMatrix::BandwidthMatrix(int num_gpus, double fill)
    : n_(num_gpus), b_(static_cast<std::size_t>(num_gpus) * static_cast<std::size_t>(num_gpus), fill) {
  for (int g = 0; g < n_; ++g) set(g, g, std::numeric_limits<double>::infinity());
}

double BandwidthMatrix::min_within(std::span<const int> gpus) const {
  double m = std::numeric_limits<double>::infinity();
  for (int g1 : gpus) {
    for (int g2 : gpus) {
      if (g1 == g2) continue;
      m = std::min(m, at(g1, g2));
    }
  }
  return m;
}

double BandwidthMatrix::min_along_ring(std::span<const int> gpus) const {
  if (gpus.size() < 2) return std::numeric_limits<double>::infinity();
  double m = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < gpus.size(); ++i) {
    const int g1 = gpus[i];
    const int g2 = gpus[(i + 1) % gpus.size()];
    m = std::min(m, at(g1, g2));
  }
  return m;
}

}  // namespace pipette::cluster
