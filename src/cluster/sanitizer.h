// Bandwidth-matrix sanitizer — the graceful-degradation half of the
// profiling pipeline. Real fabrics hand the profiler dead links, flapping
// NICs, and partially-failed probe rounds; the raw readings then contain
// NaNs, zeros, negatives, or whole unmeasured blocks. Everything downstream
// (the latency model, the incremental evaluator, SA) assumes finite positive
// bandwidths, so one bad entry silently poisons every cost it touches.
//
// sanitize_bandwidth() repairs the matrix in place and reports exactly what
// it did, so the repair provenance can ride the request all the way into
// ConfiguratorResult::explain():
//
//   * readings that are non-finite or non-positive are repaired from the
//     best available donor — the symmetric (reverse-direction) reading
//     first, then the median of the healthy readings sharing a source node
//     (inter) or a node (intra), then the global median, and as a last
//     resort a small positive floor;
//   * a node whose inter-node readings are (almost) all bad in both
//     directions is quarantined: every link touching it is pinned to the
//     floor rather than imputed from healthy peers, so the optimizer routes
//     around it instead of trusting an invented number;
//   * healthy entries are never touched — on a clean matrix the whole pass
//     is a bit-exact no-op, which is what keeps faults-off runs identical
//     to the pre-sanitizer behaviour.
//
// Granularity mirrors the profiler's: inter-node bandwidth is measured once
// per ordered node pair (and fanned out to every GPU pair crossing it), so
// repairs and counts are per node-pair *reading*; intra-node readings are
// per ordered GPU pair.
#pragma once

#include <utility>
#include <vector>

#include "cluster/bandwidth_matrix.h"

namespace pipette::cluster {

struct SanitizeOptions {
  /// Bandwidth assigned when no healthy donor exists (and to every link of a
  /// quarantined node): pessimistic enough that SA avoids the link, positive
  /// enough that every cost stays finite. 1 MB/s.
  double floor_bw = 1e6;
  /// Fraction of a node's inter-node readings (both directions) that must be
  /// bad before the node is quarantined. 1.0 = only fully-unreachable nodes.
  double quarantine_frac = 1.0;
};

/// What the sanitizer found and did. Counts are readings (node pairs for
/// inter, GPU pairs for intra), matching the profiler's measurement
/// granularity.
struct SanitizeReport {
  int total_readings = 0;       ///< readings inspected
  int repaired_nonfinite = 0;   ///< NaN / infinity readings repaired
  int repaired_nonpositive = 0; ///< zero / negative readings repaired
  int imputed_symmetric = 0;    ///< repaired from the reverse direction
  int imputed_neighbor = 0;     ///< repaired from a healthy-reading median
  int imputed_floor = 0;        ///< no donor at all: pinned to floor_bw
  /// Nodes with (almost) no healthy inter-node link in either direction.
  std::vector<int> quarantined_nodes;
  /// Ordered node pairs whose reading was repaired: (n1, n2) for inter-node
  /// repairs, (n, n) when any intra-node reading of node n was repaired.
  /// Deduplicated; this is what degraded-link accounting keys on.
  std::vector<std::pair<int, int>> repaired_node_pairs;

  int repaired_readings() const { return repaired_nonfinite + repaired_nonpositive; }
  bool clean() const { return repaired_readings() == 0 && quarantined_nodes.empty(); }
};

/// Repairs `bw` in place (self-pairs excluded — they are +infinity by
/// construction) and returns the provenance report. `num_nodes` and
/// `gpus_per_node` define the node blocks; the matrix must be
/// num_nodes * gpus_per_node square.
SanitizeReport sanitize_bandwidth(BandwidthMatrix& bw, int num_nodes, int gpus_per_node,
                                  const SanitizeOptions& opt = {});

}  // namespace pipette::cluster
