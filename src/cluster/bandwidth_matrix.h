// Dense pairwise GPU-to-GPU bandwidth matrix. This is the only interface
// through which Pipette's estimators see the cluster: the profiler produces a
// (noisy) BandwidthMatrix, and the latency model's B(g1, g2) terms read it.
#pragma once

#include <limits>
#include <span>
#include <vector>

namespace pipette::cluster {

class BandwidthMatrix {
 public:
  BandwidthMatrix() = default;
  /// Creates a G x G matrix filled with `fill` (self-pairs get +infinity).
  explicit BandwidthMatrix(int num_gpus, double fill = 0.0);

  int num_gpus() const { return n_; }

  /// Attained bandwidth from g1 to g2, bytes/second. Self-pairs are +infinity
  /// (a transfer to oneself is free).
  double at(int g1, int g2) const { return b_[index(g1, g2)]; }
  void set(int g1, int g2, double bw) { b_[index(g1, g2)] = bw; }

  /// Minimum directional bandwidth over all ordered pairs within `gpus`.
  /// Returns +infinity for groups of fewer than two members.
  double min_within(std::span<const int> gpus) const;

  /// Minimum bandwidth along the ring g[0]->g[1]->...->g[k-1]->g[0].
  double min_along_ring(std::span<const int> gpus) const;

  /// Row-major view of all G*G entries (self-pairs +infinity) — the
  /// persist-tier serialization reads this instead of G*G at() calls.
  std::span<const double> raw() const { return b_; }

 private:
  std::size_t index(int g1, int g2) const {
    return static_cast<std::size_t>(g1) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(g2);
  }
  int n_ = 0;
  std::vector<double> b_;
};

}  // namespace pipette::cluster
