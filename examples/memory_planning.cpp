// Memory planning with the two estimators — the paper's §VI scenario. For a
// model and cluster, walk the (pp, tp, micro) space and compare what the
// analytic baseline [20] claims fits against what actually fits (ground
// truth) and what Pipette's trained MLP admits. Shows exactly why
// memory-blind tools recommend OOM configurations.
//
// Run:  ./memory_planning [--model gpt-3.1b] [--global-batch 256]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "common/units.h"
#include "estimators/analytic_memory.h"
#include "estimators/mlp_memory.h"
#include "model/gpt_zoo.h"

using namespace pipette;

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const auto mcfg = model::gpt_by_name(cli.get_string("model", "gpt-3.1b"));
  const model::TrainingJob job{mcfg, cli.get_int("global-batch", 256)};

  cluster::Topology topo(cluster::mid_range_cluster(4), cluster::HeterogeneityOptions{}, 3);
  const double limit = topo.spec().gpu_memory_bytes;
  std::cout << "Memory planning for " << mcfg.name << " (global batch " << job.global_batch
            << ") on " << topo.num_gpus() << "x V100-"
            << common::fmt_fixed(limit / 1e9, 0) << "GB\n\nTraining the MLP memory estimator "
            << "from small-scale profiling runs...\n";

  estimators::MlpMemoryOptions mopt;
  mopt.max_profile_nodes = 2;
  mopt.hidden = {96, 96};
  mopt.train.iters = 6000;
  const auto mlp = estimators::MlpMemoryEstimator::train_for_cluster(topo, model::gpt_zoo(), mopt);
  std::cout << "  trained on " << mlp.dataset_size() << " profiled configurations, fit MAPE "
            << common::fmt_fixed(mlp.train_mape_percent(), 1) << " %\n\n";

  common::Table t({"config", "analytic GB", "MLP est GB", "actual GB", "analytic verdict",
                   "MLP verdict", "truth"});
  int analytic_wrong = 0, mlp_wrong = 0, rows = 0;
  for (const auto& pc : parallel::enumerate_parallel_configs(topo.num_gpus(),
                                                             topo.gpus_per_node(),
                                                             mcfg.num_layers, {})) {
    for (int micro : parallel::micro_batch_options(job.global_batch, pc, {})) {
      const parallel::TrainPlan plan{pc, micro};
      const double analytic = estimators::analytic_memory_estimate(job, plan);
      const double learned = mlp.estimate_bytes(job, plan);
      const double actual =
          sim::simulate_peak_memory(topo.spec(), job, plan, estimators::kMemoryUniverseSeed)
              .total_bytes;
      const bool fits_truth = actual <= limit;
      const bool fits_analytic = analytic <= limit;
      const bool fits_mlp = mlp.fits(job, plan, limit);
      analytic_wrong += fits_analytic != fits_truth;
      mlp_wrong += fits_mlp != fits_truth;
      ++rows;
      if (rows % 3 == 1) {  // sample for readability
        t.add_row({plan.str(), common::fmt_fixed(analytic / 1e9, 1),
                   common::fmt_fixed(learned / 1e9, 1), common::fmt_fixed(actual / 1e9, 1),
                   fits_analytic ? "fits" : "OOM", fits_mlp ? "fits" : "OOM",
                   fits_truth ? "fits" : "OOM"});
      }
    }
  }
  t.print(std::cout);
  std::cout << "\nFeasibility verdicts wrong out of " << rows
            << " configurations:  analytic baseline " << analytic_wrong << ", Pipette MLP "
            << mlp_wrong << "\n";
  return 0;
}
