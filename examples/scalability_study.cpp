// What-if scaling study: how the recommended configuration evolves as the
// same cluster grows from 2 to 16 nodes, and what each ingredient (memory
// filter, latency model, dedication) contributes at each size. A downstream
// user would run exactly this before committing to a reservation size.
//
// Run:  ./scalability_study [--tier mid-range|high-end] [--global-batch 512]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/evaluation.h"
#include "core/pipette_configurator.h"
#include "model/gpt_zoo.h"

using namespace pipette;

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const std::string tier = cli.get_string("tier", "mid-range");
  const bool high = tier == "high-end";
  const int global_batch = cli.get_int("global-batch", 512);

  const auto spec = high ? cluster::high_end_cluster(16) : cluster::mid_range_cluster(16);
  cluster::Topology full(spec, cluster::HeterogeneityOptions{}, 11);

  // Train the memory estimator once on the small end of the cluster — the
  // paper's "once per cluster" workflow.
  estimators::MlpMemoryOptions mopt;
  mopt.hidden = {96, 96};
  mopt.train.iters = 5000;
  auto memory = std::make_shared<const estimators::MlpMemoryEstimator>(
      estimators::MlpMemoryEstimator::train_for_cluster(full, model::gpt_zoo(), mopt));

  // `recommended` prints TrainPlan::str(), which spells out the schedule
  // (-i<v>), recomputation (-rcsel/-rcfull), and ZeRO-1 (-z1) axes; `axes`
  // restates them long-form so the recommendation is reproducible at a glance.
  common::Table t({"nodes", "model", "recommended", "axes", "predicted s/iter", "actual s/iter",
                   "rejected OOM", "tokens/s/GPU"});
  for (int nodes : {2, 4, 8, 16}) {
    const auto topo = full.sub_cluster(nodes);
    const model::TrainingJob job{model::weak_scaled_model(topo.num_gpus(), high), global_batch};

    core::PipetteOptions opt;
    opt.memory = memory;
    opt.sa.time_limit_s = 0.3;
    core::PipetteConfigurator ppt(opt);
    const auto rec = ppt.configure(topo, job);
    if (!rec.found) {
      t.add_row({std::to_string(nodes), job.model.name, "none found", "-", "-", "-",
                 std::to_string(rec.candidates_rejected_oom), "-"});
      continue;
    }
    sim::SimOptions sim_opt;
    const auto out = core::execute_with_oom_fallback(topo, job, rec, sim_opt);
    const double tokens =
        static_cast<double>(job.global_batch) * job.model.seq_len;
    const auto& plan = out.executed;
    std::string axes =
        plan.schedule == parallel::PipeSchedule::kInterleaved1F1B
            ? "interleaved v=" + std::to_string(plan.virtual_stages)
            : "1F1B";
    axes += plan.recompute == parallel::Recompute::kFull
                ? ", rc=full"
                : plan.recompute == parallel::Recompute::kSelective ? ", rc=sel" : ", rc=none";
    axes += plan.zero1 ? ", zero1" : "";
    t.add_row({std::to_string(nodes), job.model.name, plan.str(), axes,
               common::fmt_fixed(rec.predicted_s, 2),
               out.success ? common::fmt_fixed(out.run.time_s, 2) : "OOM",
               std::to_string(rec.candidates_rejected_oom),
               out.success
                   ? common::fmt_fixed(tokens / out.run.time_s / topo.num_gpus(), 0)
                   : "-"});
  }

  std::cout << "Scaling study on the " << tier << " cluster (weak-scaled models, global batch "
            << global_batch << ")\n\n";
  t.print(std::cout);
  return 0;
}
