// Fine-grained worker dedication on a degraded fabric — the paper's Fig. 4
// scenario. We build a cluster with a few badly degraded inter-node links,
// fix a parallel configuration, and show how simulated annealing steers the
// pipeline and gradient traffic away from the slow links.
//
// Run:  ./heterogeneous_dedication [--nodes 16] [--sa-time 1.0] [--seed 7]
#include <iostream>

#include "cluster/profiler.h"
#include "common/cli.h"
#include "common/table.h"
#include "engine/thread_pool.h"
#include "estimators/compute_profile.h"
#include "estimators/latency_models.h"
#include "model/gpt_zoo.h"
#include "search/mapping_search.h"
#include "sim/pipeline_sim.h"

using namespace pipette;

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const int nodes = cli.get_int("nodes", 16);
  const double sa_time = cli.get_double("sa-time", 1.0);
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));

  // A fabric with visible trouble: wide spread and frequent slow pairs.
  cluster::HeterogeneityOptions het;
  het.inter_spread = 0.2;
  het.slow_pair_prob = 0.15;
  het.slow_pair_factor = 0.4;
  cluster::Topology topo(cluster::mid_range_cluster(nodes), het, seed);

  const model::TrainingJob job{model::gpt_3_1b(), 512};
  // pp * tp * dp must cover the whole cluster (Eq. 2's |W| = |G|).
  const parallel::TrainPlan plan{{8, 2, nodes * topo.gpus_per_node() / 16}, 2};
  const auto& pc = plan.pc;
  std::cout << "Dedicating " << plan.str() << " workers for " << job.model.name << " on " << nodes
            << " nodes with degraded links\n\n";

  // Profile the fabric and build the latency estimator for this candidate.
  const auto profiled = cluster::profile_network(topo, {});
  const auto links = estimators::LinkConstants::from_spec(topo.spec());
  const auto prof = estimators::profile_compute(topo, job, plan, {});
  estimators::PipetteLatencyModel model(job, plan, prof, &profiled.bw, links);

  auto mapping = parallel::Mapping::megatron_default(pc);
  sim::SimOptions sim_opt;
  const auto before = sim::simulate_iteration(topo, job, mapping, plan, sim_opt);
  const double est_before = model.estimate(mapping);

  search::SaOptions sa;
  sa.seed = seed;
  // Anneal four derive_seed-keyed replicas on the pool and keep the
  // canonical best. Each chain gets a quarter of the time budget, so the
  // total compute spent matches the old single-chain call even on a
  // single-core machine (with ≥ 4 cores the chains overlap and the example
  // finishes in ~sa_time / 4 of wall clock).
  const int chains = 4;
  sa.time_limit_s = sa_time / chains;
  engine::ThreadPool pool;
  const auto res = search::optimize_mapping_multichain(mapping, model, topo.gpus_per_node(), sa,
                                                       {chains, &pool});
  const auto after = sim::simulate_iteration(topo, job, mapping, plan, sim_opt);

  common::Table t({"mapping", "estimated s/iter", "actual s/iter", "DP sync s", "bubble %"});
  t.add_row({"Megatron default", common::fmt_fixed(est_before, 3),
             common::fmt_fixed(before.total_s, 3), common::fmt_fixed(before.dp_sync_s, 3),
             common::fmt_fixed(100 * before.bubble_fraction, 1)});
  t.add_row({"fine-grained dedication", common::fmt_fixed(res.best_cost, 3),
             common::fmt_fixed(after.total_s, 3), common::fmt_fixed(after.dp_sync_s, 3),
             common::fmt_fixed(100 * after.bubble_fraction, 1)});
  t.print(std::cout);

  std::cout << "\nSA explored " << res.iters << " mappings in " << common::fmt_duration(res.wall_s)
            << "; actual speedup " << common::fmt_fixed(before.total_s / after.total_s, 3)
            << "x\n";
  return 0;
}
