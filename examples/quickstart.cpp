// Quickstart: configure GPT-3.1B training on a 32-GPU mid-range cluster.
//
// Shows the minimal Pipette workflow:
//   1. describe (or here: simulate) the cluster,
//   2. describe the training job,
//   3. run the Pipette configurator,
//   4. execute the recommendation and compare with the naive default.
//
// Run:  ./quickstart [--nodes 4] [--global-batch 128] [--sa-time 0.5]
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "common/units.h"
#include "core/evaluation.h"
#include "core/pipette_configurator.h"
#include "model/gpt_zoo.h"

using namespace pipette;

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const int nodes = cli.get_int("nodes", 4);
  const int global_batch = cli.get_int("global-batch", 128);
  const double sa_time = cli.get_double("sa-time", 0.5);

  // 1. The cluster: 8x V100 per node, heterogeneous Infiniband EDR fabric.
  cluster::Topology topo(cluster::mid_range_cluster(nodes), cluster::HeterogeneityOptions{},
                         /*seed=*/42);

  // 2. The job.
  model::TrainingJob job{model::gpt_3_1b(), global_batch};
  std::cout << "Job: " << job.model.name << " (" << common::fmt_count(static_cast<double>(
               model::total_parameters(job.model))) << " params), global batch "
            << job.global_batch << ", cluster " << topo.spec().name << " with "
            << topo.num_gpus() << " GPUs\n\n";

  // 3. Configure. The memory estimator trains once from small-scale profiling
  //    (fast profile here; see MlpMemoryOptions for the paper-scale one).
  core::PipetteOptions opt;
  opt.sa.time_limit_s = sa_time;
  opt.memory_training.hidden = {96, 96, 96};
  opt.memory_training.train.iters = 4000;
  auto pipette = core::PipetteConfigurator(opt);
  const auto rec = pipette.configure(topo, job);
  if (!rec.found) {
    std::cout << "No runnable configuration found.\n";
    return 1;
  }

  std::cout << "Pipette recommends " << rec.best.str() << "  (predicted "
            << common::fmt_fixed(rec.predicted_s, 3) << " s/iter)\n";
  // The full plan, so the recommendation is reproducible from this output.
  const auto& plan = rec.best;
  std::cout << "  schedule: "
            << (plan.schedule == parallel::PipeSchedule::kInterleaved1F1B
                    ? "interleaved-1F1B (v=" + std::to_string(plan.virtual_stages) + ")"
                    : "1F1B")
            << ", recompute: "
            << (plan.recompute == parallel::Recompute::kFull
                    ? "full"
                    : plan.recompute == parallel::Recompute::kSelective ? "selective" : "none")
            << ", ZeRO-1: " << (plan.zero1 ? "on" : "off") << "\n";
  std::cout << "  candidates evaluated: " << rec.candidates_evaluated
            << ", rejected by memory estimator: " << rec.candidates_rejected_oom << "\n";
  std::cout << "  profiling " << common::fmt_duration(rec.profile_wall_s) << " (simulated), SA "
            << common::fmt_duration(rec.search_wall_s) << ", memory estimation "
            << common::fmt_duration(rec.mem_est_wall_s) << "\n\n";

  // 4. Execute on the (simulated) cluster, against the naive default mapping.
  sim::SimOptions sim_opt;
  const auto outcome = core::execute_with_oom_fallback(topo, job, rec, sim_opt);
  if (!outcome.success) {
    std::cout << "Execution failed (all ranked configurations OOM).\n";
    return 1;
  }
  const auto naive = core::run_actual(topo, job, outcome.executed,
                                      parallel::Mapping::megatron_default(outcome.executed.pc),
                                      sim_opt);
  std::cout << "Actual time/iter with dedicated workers: "
            << common::fmt_fixed(outcome.run.time_s, 3) << " s\n";
  std::cout << "Actual time/iter with default mapping:   "
            << common::fmt_fixed(naive.time_s, 3) << " s\n";
  std::cout << "Worker dedication speedup: "
            << common::fmt_fixed(naive.time_s / outcome.run.time_s, 3) << "x\n";
  std::cout << "Peak GPU memory: " << common::fmt_fixed(common::to_GiB(outcome.run.mem.total_bytes), 1)
            << " GiB of " << common::fmt_fixed(common::to_GiB(topo.spec().gpu_memory_bytes), 0)
            << " GiB\n";
  return 0;
}
