// Engine quickstart: serve a whole scenario study with one ConfigService.
//
// The batch-sensitivity question — "how does the recommended configuration
// change with the global batch size?" — becomes a single `sweep` call: the
// cluster is profiled and the memory estimator trained exactly once (the
// cluster-fingerprint cache), and the per-batch configure requests share the
// engine's thread pool.
//
// With --trace the whole study is also captured as one Chrome trace-format
// timeline (open the file in Perfetto / chrome://tracing), --metrics dumps
// the service's Prometheus exposition, and --explain prints the winning
// request's structured report.
//
// --faults <seed> arms the deterministic chaos schedule (engine/faults.h):
// one seed-derived fault is injected into every profiling run and the sweep
// reports each request's typed outcome and plan health. --deadline-ms gives
// every request a wall-clock budget; overruns return the best-so-far plan
// with deadline_exceeded set instead of running long.
//
// --snapshot-dir <d> arms the persistent cache tier: the first run profiles
// and trains cold, then persists every artifact into <d>; a second run with
// --restart warm-starts from the snapshots (the load report says what was
// loaded vs skipped) and serves the same study without re-profiling.
// --load-report <path> writes the structured LoadReport JSON (the crash
// recovery CI uploads it), and --persist-write-delay-ms widens the
// torn-write window so a SIGKILL mid-run reliably lands inside a write.
// Composes with --faults and --explain.
//
// Run:  ./engine_sweep [--nodes 2] [--threads N] [--model gpt-774m]
//                      [--trace sweep_trace.json] [--metrics] [--explain]
//                      [--faults SEED] [--deadline-ms MS]
//                      [--snapshot-dir D] [--restart] [--load-report P]
//                      [--persist-write-delay-ms MS]
#include <fstream>
#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "engine/config_service.h"
#include "model/gpt_zoo.h"
#include "obs/trace.h"
#include "persist/store.h"

using namespace pipette;

int main(int argc, char** argv) {
  common::Cli cli(argc, argv);
  const int nodes = cli.get_int("nodes", 2);
  const int threads = cli.get_int("threads", 0);
  const std::string model_name = cli.get_string("model", "gpt-774m");
  const std::string trace_path = cli.get_string("trace", "");
  const bool print_metrics = cli.get_bool("metrics", false);
  const bool print_explain = cli.get_bool("explain", false);
  const std::uint64_t faults_seed = static_cast<std::uint64_t>(cli.get_int("faults", 0));
  const double deadline_ms = cli.get_double("deadline-ms", 0.0);
  const std::string snapshot_dir = cli.get_string("snapshot-dir", "");
  const bool restart = cli.get_bool("restart", false);
  const std::string load_report_path = cli.get_string("load-report", "");
  const double persist_delay_ms = cli.get_double("persist-write-delay-ms", 0.0);
  const bool robust = faults_seed != 0 || deadline_ms > 0.0;

  cluster::Topology topo(cluster::mid_range_cluster(nodes), cluster::HeterogeneityOptions{},
                         /*seed=*/42);
  model::TransformerConfig model_cfg;
  try {
    model_cfg = model::gpt_by_name(model_name);
  } catch (const std::out_of_range& e) {
    std::cerr << e.what() << " (try gpt-774m, gpt-1.1b, gpt-2.2b, gpt-3.1b, gpt-8.1b, gpt-11.1b)\n";
    return 1;
  }

  obs::TraceSink trace;
  engine::ConfigServiceOptions so;
  so.threads = threads;
  so.pipette.sa.max_iters = 2000;       // iteration-capped SA: deterministic
  so.pipette.sa.time_limit_s = 1e9;     // for any thread count
  so.pipette.sa_top_k = 4;
  so.pipette.memory_training.hidden = {64, 64};
  so.pipette.memory_training.train.iters = 4000;
  so.pipette.memory_training.max_profile_nodes = 2;
  so.pipette.memory_training.profile_global_batches = {128};
  so.pipette.memory_training.soft_margin = 0.2;
  if (!trace_path.empty()) so.trace = &trace;
  if (faults_seed != 0) {
    so.faults.enabled = true;
    so.faults.seed = faults_seed;
  }
  if (deadline_ms > 0.0) so.request_defaults.deadline_s = deadline_ms / 1000.0;
  if (!snapshot_dir.empty()) {
    so.cache.snapshot_dir = snapshot_dir;
    so.cache.persist_write_delay_s = persist_delay_ms / 1000.0;
  }
  engine::ConfigService service(so);

  if (!snapshot_dir.empty()) {
    const persist::LoadReport& lr = service.load_report();
    std::cout << "snapshot load (" << snapshot_dir << "): " << lr.str() << "\n";
    for (const auto& rec : lr.skipped) {
      std::cout << "  skipped " << rec.file << ": " << persist::to_string(rec.reason) << " ("
                << rec.detail << ")\n";
    }
    if (restart && lr.loaded() == 0) {
      std::cout << "  (--restart but nothing loaded: cold start)\n";
    }
    if (!load_report_path.empty()) {
      std::ofstream out(load_report_path);
      out << lr.json() << "\n";
      std::cout << "  wrote load report to " << load_report_path << "\n";
    }
    std::cout << "\n";
  }

  std::vector<model::TrainingJob> jobs;
  for (const int batch : {128, 256, 512, 1024}) jobs.push_back({model_cfg, batch});

  std::cout << "Sweeping " << model_cfg.name << " over " << jobs.size()
            << " global batch sizes on " << topo.num_gpus() << " GPUs ("
            << service.pool().num_threads() << " engine threads)\n\n";
  std::vector<engine::ServiceResult> outcomes;
  std::vector<core::ConfiguratorResult> results;
  if (robust) {
    if (faults_seed != 0) {
      std::cout << "chaos schedule: seed " << faults_seed << " -> "
                << engine::to_string(service.fault_injector()->kind()) << "\n";
    }
    if (deadline_ms > 0.0) {
      std::cout << "per-request deadline: " << common::fmt_fixed(deadline_ms, 1) << " ms\n";
    }
    std::cout << "\n";
    outcomes = service.sweep_requests(topo, jobs, so.request_defaults);
    results.reserve(outcomes.size());
    for (const auto& sr : outcomes) results.push_back(sr.result);
  } else {
    results = service.sweep(topo, jobs);
  }

  common::Table t({"global batch", "recommended", "predicted s/iter", "candidates", "oom-rejected"});
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    const auto& r = results[i];
    t.add_row({std::to_string(jobs[i].global_batch),
               r.found ? r.best.str() : "(none runnable)",
               r.found ? common::fmt_fixed(r.predicted_s, 3) : "-",
               std::to_string(r.candidates_evaluated),
               std::to_string(r.candidates_rejected_oom)});
  }
  t.print(std::cout);

  const auto stats = service.cache_stats();
  std::cout << "\ncluster cache: " << stats.lookups << " lookups, " << stats.hits
            << " hits — profiled " << stats.profiles_run << "x, trained estimator "
            << stats.trainings_run << "x for the whole study\n";

  if (!snapshot_dir.empty()) {
    // Provenance of the first request's artifacts: "disk" is the warm
    // restart working, "computed" is the cold path that seeds it.
    const auto& first = results.front();
    const auto prov = [](bool from_disk) { return from_disk ? "disk" : "computed"; };
    std::cout << "artifact provenance: profile=" << prov(first.profile_from_disk)
              << " estimator=" << prov(first.memory_from_disk)
              << " compute=" << prov(first.compute_from_disk) << "\n";
    service.flush_snapshots();
    std::cout << "persisted " << service.persisted_records() << " records to " << snapshot_dir;
    if (service.persist_failures() > 0) {
      std::cout << " (" << service.persist_failures() << " writes failed after retries)";
    }
    std::cout << "\n";
  }

  if (robust) {
    common::Table h({"global batch", "status", "retries", "repaired", "quarantined",
                     "deadline overrun ms"});
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const auto& sr = outcomes[i];
      const auto& ph = sr.result.health;
      h.add_row({std::to_string(jobs[i].global_batch), engine::to_string(sr.status),
                 std::to_string(ph.profile_retries), std::to_string(ph.repaired_readings),
                 std::to_string(ph.quarantined_nodes.size()),
                 ph.deadline_exceeded || ph.overrun_s > 0.0
                     ? common::fmt_fixed(ph.overrun_s * 1000.0, 1)
                     : "-"});
    }
    std::cout << "\nplan health:\n";
    h.print(std::cout);
  }

  const auto snap = service.metrics().snapshot();
  std::cout << "engine: " << snap.counter("pipette.requests") << " requests, "
            << snap.counter("pipette.sa.iters") << " SA iters, "
            << snap.counter("pipette.shapes.profiled") << " shapes profiled + "
            << snap.counter("pipette.shapes.reused") << " reused, "
            << snap.counter("engine.pool.tasks") << " pool tasks across "
            << snap.gauge("engine.pool.threads") << " threads\n";

  if (print_explain && !results.empty() && results.front().found) {
    std::cout << "\n--- explain (batch " << jobs.front().global_batch << ") ---\n"
              << results.front().explain() << "\n";
  }
  if (print_metrics) {
    std::cout << "\n--- metrics ---\n" << service.metrics_text();
  }
  if (!trace_path.empty()) {
    if (trace.write_json(trace_path)) {
      std::cout << "\nwrote " << trace.size() << " trace events to " << trace_path
                << " (open in Perfetto / chrome://tracing)\n";
    } else {
      std::cerr << "failed to write trace to " << trace_path << "\n";
      return 1;
    }
  }
  return 0;
}
